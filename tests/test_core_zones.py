"""Tests for the zoned/greedy large-topology arms and the policy seam.

Covers :mod:`repro.core.policy` (validation, coercion, auto resolution),
:mod:`repro.core.zones` (partitioning, boundary reservation, the stitched
zoned solve, the greedy portfolio) and the engine-level plumbing (the
dedicated zone-index LRU and its ``zone_index_hits`` counter).  The
statistical contracts -- S8 conflict-freeness, S30 guarantees, exact-arm
bitwise identity -- are property-tested in ``test_property_zones.py``.
"""

import pytest

from repro import obs
from repro.core.engine import SolverEngine
from repro.core.minslots import demand_lower_bound, minimum_slots
from repro.core.policy import DEFAULT_AUTO_THRESHOLD, SolverPolicy
from repro.core.zones import (
    ZonePartition,
    boundary_reservation,
    greedy_minimum_slots,
    partition_zones,
    zoned_minimum_slots,
)
from repro.errors import ConfigurationError
from repro.mesh16.frame import default_frame_config
from repro.net.flows import Flow, FlowSet
from repro.net.routing import route_all
from repro.net.topology import grid_topology, random_disk_topology

FRAME = default_frame_config()


def _instance(num_nodes=20, num_flows=6, seed=7):
    """A routed disk-mesh instance: (engine, index, demands, constraints)."""
    from repro.analysis.scenarios import delay_constraints_for

    topology = random_disk_topology(num_nodes, radio_range=120.0,
                                   area=400.0, seed=seed)
    nodes = sorted(topology.nodes)
    flows = route_all(topology, FlowSet([
        Flow(f"f{i}", src=nodes[i % len(nodes)],
             dst=nodes[(i + 9) % len(nodes)], rate_bps=60_000,
             delay_budget_s=0.1)
        for i in range(num_flows)]))
    demands = flows.link_demands(FRAME.frame_duration_s,
                                 FRAME.data_slot_capacity_bits)
    engine = SolverEngine()
    index = engine.conflict_index(topology, hops=2, links=sorted(demands))
    return engine, index, demands, delay_constraints_for(flows, FRAME)


# -- SolverPolicy ----------------------------------------------------------


def test_policy_defaults_are_auto_linear():
    policy = SolverPolicy()
    assert policy.mode == "auto"
    assert policy.search == "linear"
    assert policy.auto_threshold == DEFAULT_AUTO_THRESHOLD


@pytest.mark.parametrize("kwargs", [
    {"mode": "simulated-annealing"},
    {"search": "ternary"},
    {"max_zone_links": 1},
    {"gap_tolerance": -0.1},
    {"auto_threshold": 0},
    {"max_region": 0},
    {"time_limit_per_probe": 0.0},
    {"node_limit_per_probe": 0},
])
def test_policy_rejects_bad_knobs(kwargs):
    with pytest.raises(ConfigurationError):
        SolverPolicy(**kwargs)


def test_policy_coerce_accepts_none_string_and_policy():
    assert SolverPolicy.coerce(None) == SolverPolicy()
    assert SolverPolicy.coerce("greedy").mode == "greedy"
    policy = SolverPolicy(mode="zoned", max_zone_links=8)
    assert SolverPolicy.coerce(policy) is policy
    with pytest.raises(ConfigurationError, match="SolverPolicy"):
        SolverPolicy.coerce(42)


def test_policy_auto_resolves_on_the_threshold():
    policy = SolverPolicy(auto_threshold=10)
    assert policy.resolve_mode(10) == "exact"
    assert policy.resolve_mode(11) == "zoned"
    assert SolverPolicy(mode="greedy").resolve_mode(10_000) == "greedy"


def test_policy_with_overrides_folds_explicit_kwargs():
    policy = SolverPolicy()
    assert policy.with_overrides() is policy
    tuned = policy.with_overrides(search="binary", max_region=8,
                                  time_limit_per_probe=1.5)
    assert (tuned.search, tuned.max_region,
            tuned.time_limit_per_probe) == ("binary", 8, 1.5)
    with pytest.raises(ConfigurationError, match="search"):
        policy.with_overrides(search="ternary")


# -- partitioning ----------------------------------------------------------


def test_partition_covers_each_demanded_link_exactly_once():
    ____, index, demands, ____ = _instance()
    partition = partition_zones(index, demands, max_zone_links=5)
    seen = [l for zone in partition.zones for l in zone]
    assert sorted(seen) == sorted(l for l in demands if demands[l] > 0)
    assert len(seen) == len(set(seen))
    assert partition.num_links == len(seen)


def test_partition_respects_the_zone_size_cap():
    ____, index, demands, ____ = _instance()
    partition = partition_zones(index, demands, max_zone_links=4)
    assert partition.sizes() and max(partition.sizes()) <= 4


def test_partition_is_deterministic():
    ____, index, demands, ____ = _instance()
    once = partition_zones(index, demands, max_zone_links=6)
    again = partition_zones(index, demands, max_zone_links=6)
    assert once == again == ZonePartition(once.zones)


def test_partition_ignores_zero_demand_links():
    ____, index, demands, ____ = _instance()
    silent = next(iter(demands))
    demands = dict(demands)
    demands[silent] = 0
    partition = partition_zones(index, demands, max_zone_links=6)
    assert silent not in partition.zone_of()


def test_partition_rejects_degenerate_cap():
    ____, index, demands, ____ = _instance()
    with pytest.raises(ConfigurationError, match="max_zone_links"):
        partition_zones(index, demands, max_zone_links=1)


def test_boundary_reservation_counts_out_of_zone_conflicts():
    ____, index, demands, ____ = _instance()
    all_links = [l for l in index.links if demands.get(l, 0) > 0]
    # The whole mesh as one zone has nothing outside it to reserve for.
    assert boundary_reservation(index, demands, all_links) == 0
    one = [all_links[0]]
    expected = sum(demands.get(nb, 0) for nb in index.neighbors(one[0]))
    assert boundary_reservation(index, demands, one) == expected


# -- the zone-index LRU ----------------------------------------------------


def test_zone_index_is_cached_and_counted():
    engine, index, demands, ____ = _instance()
    zone = tuple(sorted(l for l in demands if demands[l] > 0))[:4]
    registry = obs.MetricsRegistry()
    previous = obs.set_registry(registry)
    try:
        first = engine.zone_index(index, zone)
        assert engine.stats["zone_index_builds"] == 1
        again = engine.zone_index(index, zone)
        assert again is first
        assert engine.stats["zone_index_hits"] == 1
        assert registry.counter("core.engine.zone_index_hits").value == 1
    finally:
        obs.set_registry(previous)


def test_zone_index_subgraph_matches_induced_subgraph():
    engine, index, demands, ____ = _instance()
    zone = tuple(sorted(l for l in demands if demands[l] > 0))[:6]
    sub = engine.zone_index(index, zone)
    expected = index.graph.subgraph(zone)
    assert sorted(sub.graph.nodes) == sorted(expected.nodes)
    assert (sorted(tuple(sorted(e)) for e in sub.graph.edges)
            == sorted(tuple(sorted(e)) for e in expected.edges))


def test_zone_requests_do_not_evict_the_full_mesh_index():
    """The dedicated zone LRU keeps the main index cache untouched."""
    engine, index, demands, ____ = _instance()
    links = [l for l in demands if demands[l] > 0]
    for i in range(len(links) - 1):
        engine.zone_index(index, links[i:i + 2])
    hits_before = engine.stats["index_hits"]
    topology = random_disk_topology(20, radio_range=120.0, area=400.0,
                                   seed=7)
    # Same fingerprint, same links: must still be a cache hit.
    again = engine.conflict_index(topology, hops=2, links=sorted(demands))
    assert engine.stats["index_hits"] == hits_before + 1
    assert again is index


def test_zone_index_rejects_foreign_links():
    engine, index, demands, ____ = _instance()
    with pytest.raises(ConfigurationError, match="not a vertex"):
        engine.zone_index(index, [(990, 991)])


# -- the zoned and greedy arms ---------------------------------------------


def test_zoned_schedule_is_conflict_free_and_meets_demands():
    engine, index, demands, constraints = _instance()
    result = zoned_minimum_slots(
        index, demands, FRAME.data_slots, constraints, engine=engine,
        policy=SolverPolicy(mode="zoned", max_zone_links=6))
    assert result.feasible
    assert result.schedule.violations(index.graph) == []
    assert result.schedule.demands_met(demands)
    assert result.slots <= FRAME.data_slots
    assert result.meta["num_zones"] >= 2
    assert result.ilp.solver_status.startswith("zoned(")


def test_zoned_stays_sound_under_a_starved_node_budget():
    """A one-node probe budget can only cost optimality, never soundness:
    undecided probes count as infeasible and the greedy zone certificates
    keep the search feasible."""
    engine, index, demands, constraints = _instance()
    result = zoned_minimum_slots(
        index, demands, FRAME.data_slots, constraints, engine=engine,
        policy=SolverPolicy(mode="zoned", max_zone_links=6,
                            node_limit_per_probe=1))
    assert result.feasible
    assert result.schedule.violations(index.graph) == []
    assert result.schedule.demands_met(demands)


def test_zoned_respects_every_delay_budget():
    from repro.core.delay import path_delay_slots

    engine, index, demands, constraints = _instance()
    result = zoned_minimum_slots(
        index, demands, FRAME.data_slots, constraints, engine=engine,
        policy=SolverPolicy(mode="zoned", max_zone_links=5))
    assert result.feasible
    for constraint in constraints:
        assert (path_delay_slots(result.schedule, constraint.route)
                <= constraint.budget_slots)


def test_zoned_rejects_unmeetable_delay_budgets():
    """A budget below any achievable path delay must yield infeasible,
    never a schedule that silently violates it."""
    from dataclasses import replace

    engine, index, demands, constraints = _instance()
    impossible = [replace(c, budget_slots=1) for c in constraints
                  if len(c.route) > 1]
    result = zoned_minimum_slots(
        index, demands, FRAME.data_slots, impossible, engine=engine,
        policy=SolverPolicy(mode="zoned", max_zone_links=5))
    assert not result.feasible
    assert result.schedule is None


def test_zoned_reports_infeasible_when_demand_exceeds_frame():
    engine, index, demands, ____ = _instance()
    result = zoned_minimum_slots(index, demands, 2, (), engine=engine,
                                 policy=SolverPolicy(mode="zoned"))
    assert not result.feasible
    assert result.lower_bound > 2


def test_zoned_accepts_a_bare_conflict_graph():
    engine, index, demands, ____ = _instance()
    result = zoned_minimum_slots(
        index.graph, demands, FRAME.data_slots, (), engine=engine,
        policy=SolverPolicy(mode="zoned", max_zone_links=6))
    assert result.feasible
    assert result.schedule.violations(index.graph) == []


def test_greedy_schedule_is_conflict_free_and_meets_demands():
    engine, index, demands, constraints = _instance()
    result = greedy_minimum_slots(index, demands, FRAME.data_slots,
                                  constraints, engine=engine)
    assert result.feasible
    assert result.schedule.violations(index.graph) == []
    assert result.schedule.demands_met(demands)
    assert result.meta["strategy"] in ("demand", "index")
    assert result.ilp.solver_status.startswith("greedy(")


def test_heuristic_arms_record_the_measured_gap():
    engine, index, demands, ____ = _instance()
    lower = demand_lower_bound(index.graph, demands)
    result = greedy_minimum_slots(index, demands, FRAME.data_slots, (),
                                  engine=engine)
    expected = (result.slots - lower) / lower
    assert result.meta["gap_vs_lower_bound"] == pytest.approx(expected)


# -- minimum_slots dispatch ------------------------------------------------


def test_auto_dispatches_by_demanded_link_count():
    engine, index, demands, constraints = _instance()
    few = SolverPolicy(auto_threshold=10_000)
    exact = minimum_slots(index.graph, demands, FRAME.data_slots,
                          constraints, engine=engine, policy=few)
    assert exact.meta is None  # the exact arm carries no heuristic meta
    many = SolverPolicy(auto_threshold=1, max_zone_links=6)
    zoned = minimum_slots(index.graph, demands, FRAME.data_slots,
                          constraints, engine=engine, policy=many)
    assert zoned.meta["mode"] == "zoned"
    assert zoned.slots >= exact.slots  # heuristic never beats optimal


def test_policy_mode_string_dispatches_each_arm():
    engine, index, demands, constraints = _instance()
    for mode, expected in (("greedy", "greedy"), ("zoned", "zoned")):
        result = minimum_slots(index.graph, demands, FRAME.data_slots,
                               constraints, engine=engine, policy=mode)
        assert result.meta["mode"] == expected


def test_explicit_search_kwarg_still_overrides_the_policy():
    engine, index, demands, constraints = _instance()
    linear = minimum_slots(index.graph, demands, FRAME.data_slots,
                           constraints, engine=SolverEngine(),
                           policy="exact")
    binary = minimum_slots(index.graph, demands, FRAME.data_slots,
                           constraints, engine=SolverEngine(),
                           search="binary", policy="exact")
    assert binary.slots == linear.slots
    assert binary.probes != linear.probes  # different search trajectory


def test_engine_policy_governs_bare_engine_solves():
    engine = SolverEngine(policy="greedy")
    ____, index, demands, constraints = _instance()
    result = engine.minimum_slots(index.graph, demands, FRAME.data_slots,
                                  constraints)
    assert result.meta["mode"] == "greedy"


def test_max_region_ceiling_check_survives_the_redesign():
    engine, index, demands, ____ = _instance()
    with pytest.raises(ConfigurationError,
                       match="max_region cannot exceed frame_slots"):
        minimum_slots(index.graph, demands, FRAME.data_slots,
                      max_region=FRAME.data_slots + 1, engine=engine)


def test_zoned_solves_a_multicomponent_mesh():
    """Two disjoint grids: zones never bridge components, and the stitch
    overlaps them in time (spatial reuse across zones)."""
    from repro.core.conflict import conflict_graph

    grid = grid_topology(3, 3)
    flows = route_all(grid, FlowSet(
        [Flow("a", src=0, dst=8, rate_bps=60_000)]))
    demands = flows.link_demands(FRAME.frame_duration_s,
                                 FRAME.data_slot_capacity_bits)
    conflicts = conflict_graph(grid, hops=2, links=sorted(demands))
    import networkx as nx

    shifted = nx.relabel_nodes(conflicts,
                               {l: (l[0] + 100, l[1] + 100)
                                for l in conflicts.nodes})
    both = nx.union(conflicts, shifted)
    both_demands = dict(demands)
    both_demands.update({(a + 100, b + 100): d
                         for (a, b), d in demands.items()})
    result = zoned_minimum_slots(
        both, both_demands, FRAME.data_slots, (),
        policy=SolverPolicy(mode="zoned", max_zone_links=4))
    single = zoned_minimum_slots(
        conflicts, demands, FRAME.data_slots, (),
        policy=SolverPolicy(mode="zoned", max_zone_links=4))
    assert result.feasible
    assert result.slots == single.slots  # parallel components overlap
