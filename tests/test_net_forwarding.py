"""Source-routed forwarder."""

import pytest

from repro.errors import SimulationError
from repro.net.forwarding import SourceRoutedForwarder
from repro.net.packet import Packet
from repro.sim.trace import Trace


class RecordingMac:
    """MacAdapter stub that records transmissions and can refuse them."""

    def __init__(self, accept: bool = True):
        self.accept = accept
        self.transmissions: list[tuple[int, Packet]] = []

    def transmit(self, node: int, packet: Packet) -> bool:
        self.transmissions.append((node, packet))
        return self.accept


def make_packet(route=((0, 1), (1, 2))):
    return Packet(flow="f", seq=0, size_bits=100, created_s=0.0,
                  route=tuple(route))


def test_originate_queues_at_source():
    mac = RecordingMac()
    forwarder = SourceRoutedForwarder(mac, lambda p, t: None)
    packet = make_packet()
    assert forwarder.originate(packet, 0.0)
    assert mac.transmissions == [(0, packet)]


def test_originate_mid_route_rejected():
    forwarder = SourceRoutedForwarder(RecordingMac(), lambda p, t: None)
    packet = make_packet()
    packet.advance()
    with pytest.raises(SimulationError):
        forwarder.originate(packet, 0.0)


def test_arrival_at_intermediate_forwards():
    mac = RecordingMac()
    delivered = []
    forwarder = SourceRoutedForwarder(mac, lambda p, t: delivered.append(p))
    packet = make_packet()
    forwarder.packet_arrived(1, packet, 1.0)
    assert packet.hop == 1
    assert mac.transmissions == [(1, packet)]
    assert delivered == []


def test_arrival_at_destination_delivers():
    delivered = []
    forwarder = SourceRoutedForwarder(RecordingMac(),
                                      lambda p, t: delivered.append((p, t)))
    packet = make_packet()
    packet.advance()
    forwarder.packet_arrived(2, packet, 3.5)
    assert delivered == [(packet, 3.5)]
    assert packet.delivered


def test_arrival_at_wrong_node_rejected():
    forwarder = SourceRoutedForwarder(RecordingMac(), lambda p, t: None)
    with pytest.raises(SimulationError):
        forwarder.packet_arrived(2, make_packet(), 0.0)


def test_mac_refusal_traced_as_drop():
    trace = Trace()
    forwarder = SourceRoutedForwarder(RecordingMac(accept=False),
                                      lambda p, t: None, trace)
    assert not forwarder.originate(make_packet(), 0.0)
    assert trace.count("fwd.drop") == 1


def test_hop_and_deliver_traced():
    trace = Trace()
    forwarder = SourceRoutedForwarder(RecordingMac(), lambda p, t: None,
                                      trace)
    packet = make_packet()
    forwarder.packet_arrived(1, packet, 1.0)
    forwarder.packet_arrived(2, packet, 2.0)
    assert trace.count("fwd.hop") == 1
    assert trace.count("fwd.deliver") == 1
