"""Channel error injection (fading model)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.phy.channel import BroadcastChannel, ChannelClient
from repro.phy.frames import FrameKind, PhyFrame
from repro.phy.radio import PhyParams
from repro.sim.engine import Simulator
from repro.sim.trace import Trace
from repro.net.topology import chain_topology

TEST_PHY = PhyParams("t", 1e6, 1e6, plcp_overhead_s=0.0,
                     propagation_delay_s=1e-6)


class Counter(ChannelClient):
    def __init__(self):
        self.ok = 0
        self.bad = 0

    def on_receive(self, frame, success):
        if success:
            self.ok += 1
        else:
            self.bad += 1

    def on_medium_change(self):
        pass


def run_transmissions(error_rate=0.0, per_link=None, count=400, seed=9):
    topo = chain_topology(2)
    sim = Simulator()
    trace = Trace()
    channel = BroadcastChannel(sim, topo, TEST_PHY, trace)
    if error_rate or per_link:
        channel.set_error_model(np.random.default_rng(seed), error_rate,
                                per_link)
    counter = Counter()
    channel.attach(0, Counter())
    channel.attach(1, counter)
    for i in range(count):
        frame = PhyFrame(FrameKind.DATA, 0, 1, 100)
        sim.schedule_at(i * 1e-3, channel.transmit, 0, frame, 1e-4)
    sim.run()
    return counter, trace


def test_no_model_means_no_random_loss():
    counter, ____ = run_transmissions()
    assert counter.bad == 0
    assert counter.ok == 400


def test_loss_rate_approximates_configured():
    counter, trace = run_transmissions(error_rate=0.2)
    assert counter.bad == pytest.approx(80, abs=30)
    assert trace.count("phy.rx_channel_error") == counter.bad


def test_per_link_rate_overrides_default():
    # reverse direction unaffected by a (0,1)-only rate
    counter, ____ = run_transmissions(error_rate=0.0,
                                      per_link={(0, 1): 0.5})
    assert counter.bad == pytest.approx(200, abs=40)


def test_deterministic_with_seed():
    a, ____ = run_transmissions(error_rate=0.1, seed=4)
    b, ____ = run_transmissions(error_rate=0.1, seed=4)
    assert a.bad == b.bad


def test_invalid_rates_rejected():
    topo = chain_topology(2)
    channel = BroadcastChannel(Simulator(), topo, TEST_PHY)
    with pytest.raises(ConfigurationError):
        channel.set_error_model(np.random.default_rng(0), 1.0)
    with pytest.raises(ConfigurationError):
        channel.set_error_model(np.random.default_rng(0), 0.0,
                                {(0, 1): -0.1})
