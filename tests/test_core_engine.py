"""Unit tests for repro.core.engine: indexes, caches, counters."""

import networkx as nx
import pytest

from repro import obs
from repro.core.conflict import conflict_graph, max_conflict_clique_demand
from repro.core.engine import (
    BF_CERTIFIED,
    ConflictIndex,
    SolverEngine,
    canonical_problem_key,
    default_engine,
    topology_fingerprint,
)
from repro.core.ilp import SchedulingProblem
from repro.core.repair import RepairEngine
from repro.errors import ConfigurationError
from repro.mesh16.distributed import DistributedScheduler
from repro.mesh16.frame import default_frame_config
from repro.net.flows import Flow, FlowSet
from repro.net.routing import route_all
from repro.net.topology import chain_topology, grid_topology
from repro.phy.interference import interference_graph


@pytest.fixture
def registry():
    reg = obs.MetricsRegistry()
    previous = obs.set_registry(reg)
    yield reg
    obs.set_registry(previous)


def _demands(topology, n=4):
    return {link: 1 for link in sorted(topology.links)[:n]}


# -- fingerprints and keys -------------------------------------------------


def test_topology_fingerprint_ignores_name_and_positions():
    a = chain_topology(5)
    b = chain_topology(5)
    b.name = "other"
    assert topology_fingerprint(a) == topology_fingerprint(b)
    assert topology_fingerprint(a) != topology_fingerprint(chain_topology(6))


def test_problem_key_sensitive_to_every_field():
    topo = chain_topology(4)
    demands = _demands(topo)
    conflicts = conflict_graph(topo, links=demands.keys())
    base = SchedulingProblem(conflicts, demands, 16)
    assert (canonical_problem_key(base)
            == canonical_problem_key(SchedulingProblem(conflicts, demands,
                                                       16)))
    variants = [
        SchedulingProblem(conflicts, demands, 18),
        SchedulingProblem(conflicts, demands, 16, region_slots=8),
        SchedulingProblem(conflicts, {k: v + 1 for k, v in demands.items()},
                          16),
        SchedulingProblem(conflicts, demands, 16, minimize_max_delay=True),
    ]
    keys = {canonical_problem_key(p) for p in variants}
    assert canonical_problem_key(base) not in keys
    assert len(keys) == len(variants)
    assert canonical_problem_key(base, time_limit=5.0) \
        != canonical_problem_key(base)
    # Solver budgets are part of the identity: a node-limited solve may
    # reach a different verdict, so it must not share a cache entry.
    assert canonical_problem_key(base, node_limit=100) \
        != canonical_problem_key(base)
    assert canonical_problem_key(base, node_limit=100) \
        != canonical_problem_key(base, time_limit=5.0)


# -- ConflictIndex ---------------------------------------------------------


def test_conflict_index_matches_conflict_graph():
    topo = grid_topology(3, 3)
    demands = _demands(topo, n=6)
    index = SolverEngine().conflict_index(topo, hops=2,
                                          links=demands.keys())
    reference = conflict_graph(topo, hops=2, links=demands.keys())
    assert set(index.graph.nodes) == set(reference.nodes)
    assert ({tuple(sorted(e)) for e in index.graph.edges}
            == {tuple(sorted(e)) for e in reference.edges})
    assert index.num_links == reference.number_of_nodes()
    assert index.num_conflicts == reference.number_of_edges()


def test_conflict_index_csr_adjacency():
    topo = chain_topology(5)
    index = SolverEngine().conflict_index(topo, hops=1)
    for link in index.links:
        assert index.links[index.position(link)] == link
        assert set(index.neighbors(link)) == set(index.graph.neighbors(link))
        assert index.degree(link) == index.graph.degree(link)
    with pytest.raises(ConfigurationError):
        index.position((99, 100))


def test_clique_demand_bound_matches_reference():
    topo = grid_topology(2, 3)
    demands = {link: (i % 3) + 1
               for i, link in enumerate(sorted(topo.links))}
    index = SolverEngine().conflict_index(topo, hops=2,
                                          links=demands.keys())
    assert (index.clique_demand_bound(demands)
            == max_conflict_clique_demand(index.graph, demands))
    assert index.clique_demand_bound({}) == 0
    with pytest.raises(ConfigurationError):
        index.clique_demand_bound({next(iter(demands)): -1})


def test_interference_index_is_exact_relation():
    topo = grid_topology(2, 3)
    index = SolverEngine().interference_index(topo)
    reference = interference_graph(topo)
    assert ({tuple(sorted(e)) for e in index.graph.edges}
            == {tuple(sorted(e)) for e in reference.edges})


# -- cache behaviour -------------------------------------------------------


def test_index_cache_hits_and_lru_eviction(registry):
    engine = SolverEngine(max_indexes=2)
    topos = [chain_topology(n) for n in (3, 4, 5)]
    first = engine.conflict_index(topos[0])
    assert engine.conflict_index(topos[0]) is first
    assert engine.stats == {**engine.stats, "index_builds": 1,
                            "index_hits": 1}
    engine.conflict_index(topos[1])
    engine.conflict_index(topos[2])  # evicts topos[0]
    assert engine.conflict_index(topos[0]) is not first
    snap = registry.snapshot()
    assert snap["counters"]["core.engine.index_builds"] == 4
    assert snap["counters"]["core.engine.index_hits"] == 1


def test_problem_cache_returns_equal_but_independent_results(registry):
    topo = chain_topology(5)
    demands = _demands(topo)
    conflicts = conflict_graph(topo, links=demands.keys())
    problem = SchedulingProblem(conflicts, demands, 16)
    engine = SolverEngine()
    first = engine.solve(problem)
    second = engine.solve(problem)
    assert engine.stats["ilp_solves"] == 1
    assert engine.stats["problem_hits"] == 1
    assert second.schedule.to_dict() == first.schedule.to_dict()
    assert second.schedule is not first.schedule
    assert second.order is not first.order
    snap = registry.snapshot()
    assert snap["counters"]["core.ilp.solves"] == 1
    assert snap["counters"]["core.engine.problem_hits"] == 1


def test_default_engine_is_stateless():
    engine = default_engine()
    assert engine.max_indexes == 0 and engine.max_problems == 0
    topo = chain_topology(4)
    demands = _demands(topo)
    conflicts = conflict_graph(topo, links=demands.keys())
    problem = SchedulingProblem(conflicts, demands, 16)
    engine.solve(problem)
    engine.solve(problem)
    assert engine.stats["problem_hits"] == 0  # nothing retained


# -- warm-start certification ----------------------------------------------


def test_certify_order_accepts_winning_order_and_rejects_tight_region():
    topo = chain_topology(6)
    demands = {link: 1 for link in topo.links}
    conflicts = conflict_graph(topo, hops=2, links=demands.keys())
    engine = SolverEngine()
    search = engine.minimum_slots(conflicts, demands, frame_slots=16)
    assert search.feasible
    certified = engine.certify_order(conflicts, demands, 16, search.slots,
                                     (), search.ilp.order)
    assert certified is not None
    assert not certified.violations(conflicts)
    assert engine.certify_order(conflicts, demands, 16, search.slots - 1,
                                (), search.ilp.order) is None


def test_bf_certified_sentinel_never_escapes():
    topo = chain_topology(6)
    demands = {link: 1 for link in topo.links}
    conflicts = conflict_graph(topo, hops=2, links=demands.keys())
    engine = SolverEngine()
    seed = engine.minimum_slots(conflicts, demands, frame_slots=16)
    warmed = engine.minimum_slots(conflicts, demands, frame_slots=16,
                                  search="binary", warm_order=seed.order)
    assert engine.stats["bf_shortcuts"] > 0
    assert warmed.ilp.solver_status != BF_CERTIFIED
    assert warmed.slots == seed.slots
    assert warmed.schedule.to_dict() == seed.schedule.to_dict()


# -- cross-layer consumers -------------------------------------------------


def test_repair_engine_reuses_one_conflict_index(registry):
    topo = grid_topology(3, 3)
    frame = default_frame_config()
    flows = route_all(topo, FlowSet([
        Flow("f0", src=8, dst=0, rate_bps=64_000, delay_budget_s=0.1),
        Flow("f1", src=6, dst=0, rate_bps=64_000, delay_budget_s=0.1)]))
    repair = RepairEngine(topo, frame)
    repair.install(list(flows))
    repair.retarget(frozenset(), frozenset({(0, 1)}))
    stats = repair.engine.stats
    # every conflict graph the repair path consumed went through the
    # engine; re-running an identical retarget only adds cache hits
    builds_before = stats["index_builds"]
    repair.peek_resolve()
    assert repair.engine.stats["index_builds"] == builds_before
    snap = registry.snapshot()
    assert snap["counters"]["core.engine.index_builds"] == builds_before
    assert snap["counters"].get("core.engine.index_hits", 0) >= 1


def test_distributed_scheduler_validates_against_shared_index(registry):
    topo = grid_topology(2, 3)
    demands = {link: 1 for link in sorted(topo.links)[::2]}
    engine = SolverEngine()
    dsch = DistributedScheduler(topo, 2 * len(demands), engine=engine)
    first = dsch.run(demands)
    second = dsch.run(demands)
    assert not first.unserved and not second.unserved
    assert engine.stats["index_builds"] == 1  # one build, second run hits
    assert engine.stats["index_hits"] == 1
    snap = registry.snapshot()
    assert snap["counters"]["mesh16.dsch.validated"] == 2


def test_scenario_shares_engine_across_properties():
    from repro.api import Scenario

    topo = grid_topology(3, 3)
    flows = [Flow("f", src=8, dst=0, rate_bps=64_000, delay_budget_s=0.1)]
    scenario = Scenario(topo, flows).route()
    scenario.conflicts
    scenario.conflicts
    search = scenario.schedule()
    assert search.feasible
    assert scenario.engine.stats["index_builds"] == 1
    assert scenario.engine.stats["index_hits"] >= 2


# -- delta updates and in-place mutation ------------------------------------


def test_fingerprint_invalidated_by_in_place_mutation():
    topology = grid_topology(3, 3)
    before = topology_fingerprint(topology)
    topology.apply_edge_changes(remove=[(0, 1)])
    after = topology_fingerprint(topology)
    assert after != before
    topology.apply_edge_changes(add=[(0, 1)])
    assert topology_fingerprint(topology) == before


def test_fingerprint_survives_equal_count_edge_swap():
    # remove one edge and add another in a single call: node and edge
    # counts are unchanged, so only the mutation counter can catch it
    topology = grid_topology(3, 3)
    before = topology_fingerprint(topology)
    topology.apply_edge_changes(add=[(0, 4)], remove=[(0, 1)])
    assert topology_fingerprint(topology) != before


def test_engine_never_serves_a_stale_index_after_mutation(registry):
    engine = SolverEngine()
    topology = grid_topology(3, 3)
    stale = engine.conflict_index(topology, hops=2)
    topology.apply_edge_changes(remove=[(0, 1)])
    fresh = engine.conflict_index(topology, hops=2)
    assert fresh is not stale
    expected = conflict_graph(topology, hops=2)
    assert set(map(frozenset, fresh.graph.edges)) == \
        set(map(frozenset, expected.edges))


def test_delta_update_matches_cold_rebuild_bitwise(registry):
    import numpy as np

    topology = grid_topology(4, 5)
    engine = SolverEngine()
    engine.conflict_index(topology, hops=2)
    topology.apply_edge_changes(remove=[(0, 1)])
    delta_idx = engine.conflict_index(topology, hops=2)
    assert engine.stats["delta_updates"] == 1
    assert engine.stats["index_builds"] == 1
    cold = SolverEngine().conflict_index(topology, hops=2)
    assert list(delta_idx.graph.nodes) == list(cold.graph.nodes)
    assert list(delta_idx.graph.edges) == list(cold.graph.edges)
    assert np.array_equal(delta_idx.indptr, cold.indptr)
    assert np.array_equal(delta_idx.indices, cold.indices)
    snap = registry.snapshot()
    assert snap["counters"]["core.engine.delta_updates"] == 1


def test_delta_updates_can_be_disabled():
    topology = grid_topology(4, 5)
    engine = SolverEngine(delta_updates=False)
    engine.conflict_index(topology, hops=2)
    topology.apply_edge_changes(remove=[(0, 1)])
    engine.conflict_index(topology, hops=2)
    assert engine.stats["delta_updates"] == 0
    assert engine.stats["index_builds"] == 2


def test_delta_bases_keep_subset_and_full_lineages_apart():
    # repair asks for demand-link subsets while validation asks for the
    # whole topology; interleaving the two must not poison either
    # lineage's delta base
    topology = grid_topology(4, 5)
    engine = SolverEngine()
    engine.conflict_index(topology, hops=2)
    subset = sorted(tuple(sorted(l)) for l in topology.graph.edges)[:6]
    engine.conflict_index(topology, hops=2, links=subset)
    topology.apply_edge_changes(remove=[(0, 1)])
    before = engine.stats["delta_updates"]
    engine.conflict_index(topology, hops=2)
    assert engine.stats["delta_updates"] == before + 1


def test_delta_rejected_when_most_links_are_dirty():
    # a chain is so small that any edge change dirties over half the
    # links; the engine must fall back to a full rebuild
    topology = chain_topology(5)
    engine = SolverEngine()
    engine.conflict_index(topology, hops=2)
    topology.apply_edge_changes(add=[(0, 2)])
    engine.conflict_index(topology, hops=2)
    assert engine.stats["delta_updates"] == 0
    assert engine.stats["index_builds"] == 2
