"""Transmission orders and order -> schedule recovery."""

import pytest

from repro.core.conflict import conflict_graph
from repro.core.ordering import TransmissionOrder, schedule_from_order
from repro.core.schedule import Schedule, SlotBlock
from repro.errors import ConfigurationError, InfeasibleScheduleError


class TestTransmissionOrder:
    def test_from_ranking(self):
        order = TransmissionOrder.from_ranking([(0, 1), (1, 2), (2, 3)])
        assert order.precedes((0, 1), (1, 2))
        assert order.precedes((0, 1), (2, 3))
        assert not order.precedes((2, 3), (1, 2))

    def test_duplicate_in_ranking_rejected(self):
        with pytest.raises(ConfigurationError):
            TransmissionOrder.from_ranking([(0, 1), (0, 1)])

    def test_from_pairs_both_orientations(self):
        order = TransmissionOrder.from_pairs({((0, 1), (1, 2)): True})
        assert order.precedes((0, 1), (1, 2))
        assert not order.precedes((1, 2), (0, 1))

    def test_from_schedule(self):
        schedule = Schedule(10, {(0, 1): SlotBlock(4, 1),
                                 (1, 2): SlotBlock(0, 2)})
        order = TransmissionOrder.from_schedule(schedule)
        assert order.precedes((1, 2), (0, 1))

    def test_self_comparison_rejected(self):
        order = TransmissionOrder.from_ranking([(0, 1)])
        with pytest.raises(ConfigurationError):
            order.precedes((0, 1), (0, 1))

    def test_unknown_pair_rejected(self):
        order = TransmissionOrder.from_pairs({((0, 1), (1, 2)): True})
        with pytest.raises(ConfigurationError):
            order.precedes((0, 1), (5, 6))
        assert not order.knows((0, 1), (5, 6))
        assert order.knows((0, 1), (1, 2))

    def test_equal_rank_tie_break_is_stable(self):
        order = TransmissionOrder({(0, 1): 1.0, (1, 2): 1.0})
        assert order.precedes((0, 1), (1, 2))
        assert not order.precedes((1, 2), (0, 1))

    def test_links_listing(self):
        order = TransmissionOrder.from_ranking([(2, 3), (0, 1)])
        assert order.links() == [(0, 1), (2, 3)]


class TestScheduleFromOrder:
    def test_forward_chain_order_pipelines(self, chain5):
        conflicts = conflict_graph(chain5, hops=2)
        route = [(0, 1), (1, 2), (2, 3), (3, 4)]
        demands = {link: 1 for link in route}
        order = TransmissionOrder.from_ranking(route)
        schedule = schedule_from_order(conflicts, demands, 10, order)
        starts = [schedule.block(link).start for link in route]
        assert starts == sorted(starts)
        schedule.validate(conflicts)

    def test_earliest_packs_to_front(self, chain5):
        conflicts = conflict_graph(chain5, hops=2)
        demands = {(0, 1): 1, (1, 2): 1}
        order = TransmissionOrder.from_ranking([(0, 1), (1, 2)])
        schedule = schedule_from_order(conflicts, demands, 10, order,
                                       earliest=True)
        assert schedule.block((0, 1)).start == 0
        assert schedule.block((1, 2)).start == 1

    def test_latest_packs_to_back(self, chain5):
        conflicts = conflict_graph(chain5, hops=2)
        demands = {(0, 1): 1, (1, 2): 1}
        order = TransmissionOrder.from_ranking([(0, 1), (1, 2)])
        schedule = schedule_from_order(conflicts, demands, 10, order,
                                       earliest=False)
        assert schedule.block((1, 2)).end == 10
        assert schedule.block((0, 1)).end <= 9

    def test_respects_demands(self, chain5):
        conflicts = conflict_graph(chain5, hops=2)
        demands = {(0, 1): 3, (1, 2): 2}
        order = TransmissionOrder.from_ranking([(0, 1), (1, 2)])
        schedule = schedule_from_order(conflicts, demands, 10, order)
        assert schedule.block((0, 1)).length == 3
        assert schedule.block((1, 2)).start >= 3

    def test_infeasible_when_frame_too_small(self, chain5):
        conflicts = conflict_graph(chain5, hops=2)
        # links (0,1),(1,2),(2,3) mutually conflict: need 3 slots
        demands = {(0, 1): 1, (1, 2): 1, (2, 3): 1}
        order = TransmissionOrder.from_ranking([(0, 1), (1, 2), (2, 3)])
        with pytest.raises(InfeasibleScheduleError):
            schedule_from_order(conflicts, demands, 2, order)

    def test_demand_exceeding_frame_infeasible(self, chain5):
        conflicts = conflict_graph(chain5, hops=2)
        order = TransmissionOrder.from_ranking([(0, 1)])
        with pytest.raises(InfeasibleScheduleError):
            schedule_from_order(conflicts, {(0, 1): 5}, 4, order)

    def test_zero_demand_links_skipped(self, chain5):
        conflicts = conflict_graph(chain5, hops=2)
        demands = {(0, 1): 1, (1, 2): 0}
        order = TransmissionOrder.from_ranking([(0, 1), (1, 2)])
        schedule = schedule_from_order(conflicts, demands, 10, order)
        assert (1, 2) not in schedule

    def test_spatial_reuse_same_slot(self, chain8):
        # (0,1) and (4,5) are far apart: a total order still lets them
        # share slot 0 because no conflict edge constrains them
        conflicts = conflict_graph(chain8, hops=2)
        demands = {(0, 1): 1, (4, 5): 1}
        order = TransmissionOrder.from_ranking([(0, 1), (4, 5)])
        schedule = schedule_from_order(conflicts, demands, 10, order)
        assert schedule.block((0, 1)).start == 0
        assert schedule.block((4, 5)).start == 0

    def test_partial_order_from_ilp_pairs(self, chain5):
        conflicts = conflict_graph(chain5, hops=2)
        demands = {(0, 1): 1, (1, 2): 1, (2, 3): 1}
        pairs = {}
        links = [(0, 1), (1, 2), (2, 3)]
        for i, a in enumerate(links):
            for b in links[i + 1:]:
                pairs[(a, b)] = True  # canonical link order = frame order
        order = TransmissionOrder.from_pairs(pairs)
        schedule = schedule_from_order(conflicts, demands, 10, order)
        schedule.validate(conflicts)
