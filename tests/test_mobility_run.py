"""Unit tests for repro.mobility.run: the stream -> repair driver."""

import pytest

from repro import obs
from repro.core.engine import SolverEngine
from repro.errors import ConfigurationError
from repro.mobility.models import ConstantVelocityModel
from repro.mobility.run import run_mobility
from repro.mobility.stream import TopologyStream
from repro.net.flows import Flow


@pytest.fixture
def registry():
    reg = obs.MetricsRegistry()
    previous = obs.set_registry(reg)
    yield reg
    obs.set_registry(previous)


def drive_by_stream():
    """A static square mesh plus one node driving into it at 10 m/s.

    Nodes 0-3 sit on an 80 m square (side links only; the 113 m
    diagonals are out of the 100 m range).  Node 4 approaches from the
    east and forms links to nodes 0 and 2 around t=8 -- churn that
    never disconnects anything, so repair always succeeds.
    """
    positions = {0: (0.0, 0.0), 1: (80.0, 0.0), 2: (0.0, 80.0),
                 3: (80.0, 80.0), 4: (160.0, 40.0)}
    velocities = {n: (0.0, 0.0) for n in positions}
    velocities[4] = (-10.0, 0.0)
    model = ConstantVelocityModel(positions, velocities, 10.0)
    return TopologyStream(model, 100.0, dt=1.0)


def leaf_loss_stream():
    """A chain whose far leaf drives out of range and stays gone."""
    positions = {0: (0.0, 0.0), 1: (80.0, 0.0), 2: (160.0, 0.0)}
    velocities = {0: (0.0, 0.0), 1: (0.0, 0.0), 2: (10.0, 0.0)}
    model = ConstantVelocityModel(positions, velocities, 10.0)
    return TopologyStream(model, 100.0, dt=1.0)


def flows(*specs):
    return [Flow(f"f{i}", src=s, dst=d, rate_bps=64_000,
                 delay_budget_s=0.5) for i, (s, d) in enumerate(specs)]


def test_run_mobility_keeps_validity_under_churn(registry):
    result = run_mobility(drive_by_stream(), flows((3, 0), (4, 0)))
    assert result.conflict_ok and result.guarantee_ok
    assert len(result.steps) > 0, "the drive-by must generate churn"
    assert result.local + result.resolve + result.noop == len(result.steps)
    assert 0.0 <= result.goodput_fraction <= 1.0
    assert result.engine_stats["index_builds"] > 0
    assert registry.snapshot()["counters"]["mobility.deltas_applied"] > 0


def test_run_mobility_is_deterministic():
    a = run_mobility(drive_by_stream(), flows((3, 0), (4, 0)))
    b = run_mobility(drive_by_stream(), flows((3, 0), (4, 0)))
    assert a.steps == b.steps
    assert a.lost_packets == b.lost_packets
    assert a.reselections == b.reselections


def test_run_mobility_delta_and_rebuild_arms_agree():
    delta = run_mobility(drive_by_stream(), flows((3, 0), (4, 0)),
                         engine=SolverEngine(delta_updates=True))
    rebuild = run_mobility(drive_by_stream(), flows((3, 0), (4, 0)),
                           engine=SolverEngine(delta_updates=False))
    assert delta.steps == rebuild.steps
    assert delta.lost_packets == rebuild.lost_packets
    assert (delta.engine_stats["index_builds"]
            <= rebuild.engine_stats["index_builds"])


def test_run_mobility_counts_gateway_reselection():
    # with gateways {0, 3}, node 4 starts nearer to 3 and flips to 0
    # once its direct link to the anchor forms
    result = run_mobility(drive_by_stream(), flows((3, 0)),
                          gateways=(0, 3))
    assert result.reselections > 0


def test_run_mobility_static_stream_is_lossless():
    positions = {0: (0.0, 0.0), 1: (80.0, 0.0), 2: (0.0, 80.0)}
    model = ConstantVelocityModel(positions,
                                  {n: (0.0, 0.0) for n in positions}, 10.0)
    stream = TopologyStream(model, 100.0, dt=1.0)
    result = run_mobility(stream, flows((1, 0)))
    assert result.steps == ()
    assert result.goodput_fraction == 1.0
    assert result.parked_final == ()


def test_run_mobility_parks_flows_that_lose_their_last_path():
    result = run_mobility(leaf_loss_stream(), flows((2, 0)))
    assert result.conflict_ok and result.guarantee_ok
    assert result.parked_events > 0
    assert result.parked_final == ("f0",)
    assert result.goodput_fraction < 1.0
    assert result.lost_packets > 0


def test_run_mobility_rejects_unreachable_endpoints_and_bad_cadence():
    positions = {0: (0.0, 0.0), 1: (80.0, 0.0), 2: (1000.0, 1000.0),
                 3: (1080.0, 1000.0)}
    model = ConstantVelocityModel(positions,
                                  {n: (0.0, 0.0) for n in positions}, 5.0)
    stream = TopologyStream(model, 100.0, dt=1.0)
    with pytest.raises(ConfigurationError):
        run_mobility(stream, flows((2, 0)))
    with pytest.raises(ConfigurationError):
        run_mobility(stream, flows((1, 0)), packet_interval_s=0.0)
