"""Module-level task targets for the runtime tests.

Worker processes re-import task callables by ``module:qualname``, so
anything dispatched with ``jobs > 1`` must live at module level --
closures defined inside a test function cannot cross the process
boundary.  These helpers are deliberately tiny and deterministic.
"""

from __future__ import annotations

import os
import pathlib
import time


def add(a: int, b: int) -> int:
    return a + b


def sleep_for(seconds: float) -> str:
    time.sleep(seconds)
    return f"slept {seconds}"

def metrics_scenario(rngs) -> dict[str, float]:
    """A replicate()-style scenario: metrics derived from the seed."""
    draw = float(rngs.stream("x").random())
    return {"value": draw, "shifted": 5.0 + draw}


def seed_echo(rngs, offset: float = 0.0) -> dict[str, float]:
    return {"seed_draw": float(rngs.stream("s").random()) + offset}


def boom() -> None:
    raise RuntimeError("kaboom")


def boom_scenario(rngs) -> dict[str, float]:
    raise RuntimeError("kaboom")


def flaky(sentinel_dir: str, fail_times: int = 2) -> str:
    """Fail the first ``fail_times`` calls, then succeed.

    Cross-process state lives in sentinel files: every attempt drops
    one, and the call succeeds once enough are present.  Works the same
    in serial and pool mode.
    """
    directory = pathlib.Path(sentinel_dir)
    directory.mkdir(parents=True, exist_ok=True)
    attempt_marks = len(list(directory.glob("attempt-*")))
    (directory / f"attempt-{attempt_marks}-{os.getpid()}-"
     f"{time.monotonic_ns()}").touch()
    if attempt_marks < fail_times:
        raise RuntimeError(f"flaky failure #{attempt_marks + 1}")
    return "recovered"


def unpicklable_value() -> object:
    """Returns something no JSON encoder or pickler wants to touch."""
    return lambda: None


def permanent_boom() -> None:
    """Fails with an error the pool must never spend retries on."""
    from repro.errors import PermanentTaskError

    raise PermanentTaskError("input can never work")


def cache_writer_sweep(cache_dir: str, num_tasks: int, seed: int) -> int:
    """Run a probe sweep against a (possibly shared) cache directory.

    Used by the concurrent-writer race test: two processes call this
    simultaneously with the *same* arguments, so both compute the same
    keys and race on every cache write.  Returns the number of ok/cached
    results so the parent can assert the sweep itself succeeded.
    """
    from repro.runtime.cache import ResultCache
    from repro.runtime.pool import run_tasks
    from repro.runtime.tasks import make_task

    tasks = [make_task("repro.runtime.chaos:chaos_probe",
                       {"x": x, "seed": seed}) for x in range(num_tasks)]
    results = run_tasks(tasks, jobs=1, cache=ResultCache(cache_dir))
    return sum(1 for r in results if r.ok)
