"""TDMA overlay MAC: slot adherence, delivery, sync integration."""

import pytest

from repro.core.schedule import Schedule, SlotBlock
from repro.errors import ConfigurationError
from repro.mesh16.frame import default_frame_config
from repro.mesh16.network import ControlPlane
from repro.net.packet import Packet
from repro.overlay.emulation import TdmaOverlay
from repro.overlay.sync import SyncConfig, SyncDaemon
from repro.phy.channel import BroadcastChannel
from repro.sim.clock import DriftingClock
from repro.sim.engine import Simulator
from repro.sim.random import RngRegistry
from repro.sim.trace import Trace
from repro.net.topology import chain_topology
from repro.units import US, ppm


def build_overlay(topology, schedule, drift_skews=None, sync_enabled=True,
                  jitter=0.0, gateway=0, seed=9):
    sim = Simulator()
    trace = Trace()
    config = default_frame_config()
    channel = BroadcastChannel(sim, topology, config.phy, trace)
    rngs = RngRegistry(seed=seed)
    clocks, daemons = {}, {}
    sync_config = SyncConfig(timestamp_jitter_s=jitter,
                             enabled=sync_enabled)
    for node in topology.nodes:
        skew = (drift_skews or {}).get(node, 0.0)
        clocks[node] = DriftingClock(skew=skew)
        daemons[node] = SyncDaemon(node, gateway, clocks[node], sync_config,
                                   rngs.stream(f"s{node}"), trace)
    delivered = []
    plane = ControlPlane(topology, gateway, config)
    overlay = TdmaOverlay(sim, topology, channel, config, plane, schedule,
                          clocks, daemons,
                          on_packet=lambda n, p: delivered.append((sim.now,
                                                                   n, p)),
                          trace=trace)
    return sim, overlay, delivered, trace, config


def make_packet(route, bits=800, flow="f", seq=0):
    return Packet(flow=flow, seq=seq, size_bits=bits, created_s=0.0,
                  route=tuple(route))


class TestBasicOperation:
    def test_single_hop_delivery_in_assigned_slot(self):
        topo = chain_topology(2)
        schedule = Schedule(16, {(0, 1): SlotBlock(3, 1)})
        sim, overlay, delivered, trace, config = build_overlay(topo, schedule)
        packet = make_packet([(0, 1)])
        assert overlay.transmit(0, packet)
        overlay.start()
        sim.run(until=0.05)
        assert [(n, p) for ____, n, p in delivered] == [(1, packet)]
        # the transmission happened inside data slot 3 of some frame
        tx = trace.last("tdma.tx")
        assert tx["slot"] == 3
        offset = tx.time % config.frame_duration_s
        slot_start = config.data_slot_offset(3)
        assert slot_start <= offset < slot_start + config.data_slot_s

    def test_queue_drains_one_fragment_per_slot(self):
        topo = chain_topology(2)
        schedule = Schedule(16, {(0, 1): SlotBlock(0, 1)})
        sim, overlay, delivered, trace, config = build_overlay(topo, schedule)
        for seq in range(3):
            overlay.transmit(0, make_packet([(0, 1)], seq=seq))
        overlay.start()
        sim.run(until=3.5 * config.frame_duration_s)
        assert len(delivered) == 3
        # one per frame
        deltas = [b - a for (a, ____, ____), (b, ____, ____)
                  in zip(delivered, delivered[1:])]
        assert all(d == pytest.approx(config.frame_duration_s, rel=1e-3)
                   for d in deltas)

    def test_block_of_two_slots_doubles_throughput(self):
        topo = chain_topology(2)
        schedule = Schedule(16, {(0, 1): SlotBlock(0, 2)})
        sim, overlay, delivered, ____, config = build_overlay(topo, schedule)
        for seq in range(4):
            overlay.transmit(0, make_packet([(0, 1)], seq=seq))
        overlay.start()
        sim.run(until=2.5 * config.frame_duration_s)
        assert len(delivered) == 4

    def test_multihop_relay(self):
        topo = chain_topology(4)
        schedule = Schedule(16, {(0, 1): SlotBlock(0, 1),
                                 (1, 2): SlotBlock(1, 1),
                                 (2, 3): SlotBlock(2, 1)})
        sim, overlay, delivered, ____, config = build_overlay(topo, schedule)
        packet = make_packet([(0, 1)])

        # wire a mini-forwarder: on arrival, advance and re-enqueue
        full_route = ((0, 1), (1, 2), (2, 3))
        packet = make_packet(full_route)
        arrived = []

        def forward(node, pkt):
            pkt.advance()
            if pkt.delivered:
                arrived.append((sim.now, node))
            else:
                overlay.transmit(node, pkt)

        overlay.on_packet = forward
        overlay.transmit(0, packet)
        overlay.start()
        sim.run(until=0.1)
        assert len(arrived) == 1
        assert arrived[0][1] == 3

    def test_fragmentation_reassembly_over_air(self):
        topo = chain_topology(2)
        schedule = Schedule(16, {(0, 1): SlotBlock(0, 3)})
        sim, overlay, delivered, ____, config = build_overlay(topo, schedule)
        big = make_packet([(0, 1)],
                          bits=2 * config.data_slot_capacity_bits + 10)
        overlay.transmit(0, big)
        overlay.start()
        sim.run(until=0.05)
        assert [p for ____, ____, p in delivered] == [big]

    def test_queue_overflow_rejected(self):
        topo = chain_topology(2)
        schedule = Schedule(16, {(0, 1): SlotBlock(0, 1)})
        sim, overlay, ____, trace, config = build_overlay(topo, schedule)
        results = [overlay.transmit(0, make_packet([(0, 1)], seq=i))
                   for i in range(300)]
        assert not all(results)
        assert trace.count("tdma.queue_drop") > 0

    def test_wrong_node_enqueue_rejected(self):
        topo = chain_topology(2)
        schedule = Schedule(16, {(0, 1): SlotBlock(0, 1)})
        ____, overlay, ____, ____, ____ = build_overlay(topo, schedule)
        with pytest.raises(ConfigurationError):
            overlay.transmit(1, make_packet([(0, 1)]))


class TestScheduleValidation:
    def test_slot_count_mismatch_rejected(self):
        topo = chain_topology(2)
        schedule = Schedule(8, {(0, 1): SlotBlock(0, 1)})  # frame has 16
        with pytest.raises(ConfigurationError, match="slots"):
            build_overlay(topo, schedule)

    def test_unknown_transmitter_rejected(self):
        topo = chain_topology(2)
        schedule = Schedule(16, {(7, 8): SlotBlock(0, 1)})
        with pytest.raises(ConfigurationError):
            build_overlay(topo, schedule)


class TestSlotAdherence:
    def test_conflicting_slots_no_collisions_when_synced(self):
        topo = chain_topology(3)
        schedule = Schedule(16, {(0, 1): SlotBlock(0, 1),
                                 (2, 1): SlotBlock(1, 1)})
        sim, overlay, delivered, trace, config = build_overlay(
            topo, schedule,
            drift_skews={1: ppm(10), 2: -ppm(10)})
        for seq in range(20):
            overlay.transmit(0, make_packet([(0, 1)], flow="a", seq=seq))
            overlay.transmit(2, make_packet([(2, 1)], flow="b", seq=seq))
        overlay.start()
        sim.run(until=0.3)
        assert trace.count("tdma.rx_corrupt") == 0
        flows = [p.flow for ____, ____, p in delivered]
        assert flows.count("a") == 20
        assert flows.count("b") == 20

    def test_desync_causes_slot_collisions(self):
        # no sync, huge drift: node 2's slot boundary walks into node 0's
        topo = chain_topology(3)
        schedule = Schedule(16, {(0, 1): SlotBlock(0, 1),
                                 (2, 1): SlotBlock(1, 1)})
        sim, overlay, ____, trace, config = build_overlay(
            topo, schedule, drift_skews={2: 0.01},  # 10000 ppm!
            sync_enabled=False)
        for seq in range(200):
            overlay.transmit(0, make_packet([(0, 1)], flow="a", seq=seq))
            overlay.transmit(2, make_packet([(2, 1)], flow="b", seq=seq))
        overlay.start()
        sim.run(until=2.0)
        assert trace.count("tdma.rx_corrupt") > 0


class TestSyncIntegration:
    def test_sync_error_bounded_with_beacons(self):
        topo = chain_topology(4)
        schedule = Schedule(16, {})
        sim, overlay, ____, trace, ____ = build_overlay(
            topo, schedule,
            drift_skews={1: ppm(10), 2: -ppm(10), 3: ppm(5)},
            jitter=1 * US)
        overlay.start()
        sim.run(until=2.0)
        assert trace.count("sync.adopt") > 0
        assert overlay.max_sync_error_s() < 50 * US

    def test_without_sync_error_grows(self):
        topo = chain_topology(2)
        schedule = Schedule(16, {})
        sim, overlay, ____, ____, ____ = build_overlay(
            topo, schedule, drift_skews={1: ppm(10)}, sync_enabled=False)
        overlay.start()
        sim.run(until=2.0)
        assert overlay.max_sync_error_s() == pytest.approx(
            ppm(10) * sim.now, rel=0.2)
