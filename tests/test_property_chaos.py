"""Property-based chaos tests for the execution runtime.

The drawn quantity is the chaos schedule itself -- intensity and seed --
and the invariants must hold at *any* draw:

- chaos that stops injecting within the retry budget yields results
  bitwise identical to a chaos-free run (the E22 contract);
- chaos that exhausts the budget (no retries) fails exactly the tasks
  the policy says it hits, with the injected error on record -- never a
  silently wrong value;
- the injection schedule is a pure function of (seed, key, attempt):
  recomputing it gives the same decisions in any order.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.chaos import ChaosPolicy
from repro.runtime.pool import run_tasks
from repro.runtime.tasks import make_task, task_key

PROBE = "repro.runtime.chaos:chaos_probe"

TASKS = [make_task(PROBE, {"x": x, "seed": 3}) for x in range(6)]
BASELINE = None


def baseline_values():
    global BASELINE
    if BASELINE is None:
        BASELINE = [json.dumps(r.value, sort_keys=True)
                    for r in run_tasks(TASKS, jobs=1)]
    return BASELINE


class FakeTime:
    def __init__(self):
        self.now = 0.0

    def clock(self):
        return self.now

    def sleep(self, seconds):
        self.now += seconds


@pytest.mark.chaos
@given(intensity=st.floats(min_value=0.0, max_value=1.0),
       seed=st.integers(0, 10_000))
@settings(max_examples=20, deadline=None)
def test_chaos_within_retry_budget_never_changes_results(intensity, seed):
    chaos = ChaosPolicy.at_intensity(intensity, seed=seed, max_attempt=2)
    fake = FakeTime()
    out = run_tasks(TASKS, jobs=1, retries=3, backoff_s=0.1, jitter=0.5,
                    retry_timeouts=True, chaos=chaos,
                    clock=fake.clock, sleep=fake.sleep)
    assert [r.outcome for r in out] == ["ok"] * len(TASKS)
    assert [json.dumps(r.value, sort_keys=True)
            for r in out] == baseline_values()


@pytest.mark.chaos
@given(intensity=st.floats(min_value=0.0, max_value=1.0),
       seed=st.integers(0, 10_000))
@settings(max_examples=20, deadline=None)
def test_fatal_chaos_fails_exactly_the_predicted_tasks(intensity, seed):
    """With zero retries, outcomes are decided by the policy alone."""
    chaos = ChaosPolicy.at_intensity(intensity, seed=seed, max_attempt=1)
    fake = FakeTime()
    out = run_tasks(TASKS, jobs=1, retries=0, chaos=chaos,
                    clock=fake.clock, sleep=fake.sleep)
    for result in out:
        action = chaos.task_action(task_key(result.task), 1)
        if action is None:
            assert result.outcome == "ok"
        elif action == "hang":
            assert result.outcome == "timeout"
        else:
            assert result.outcome == "failed"
            assert "chaos" in result.error
        assert result.attempts == 1


@pytest.mark.chaos
@given(seed=st.integers(0, 10_000),
       keys=st.lists(st.text(min_size=1, max_size=8), min_size=1,
                     max_size=20))
@settings(max_examples=30, deadline=None)
def test_injection_schedule_is_order_independent(seed, keys):
    chaos = ChaosPolicy.at_intensity(0.9, seed=seed, max_attempt=3)
    forward = [(k, a, chaos.task_action(k, a), chaos.cache_action(k),
                chaos.ledger_torn(k, a))
               for k in keys for a in (1, 2, 3)]
    backward = [(k, a, chaos.task_action(k, a), chaos.cache_action(k),
                 chaos.ledger_torn(k, a))
                for k in reversed(keys) for a in (3, 2, 1)]
    assert sorted(map(repr, forward)) == sorted(map(repr, backward))
