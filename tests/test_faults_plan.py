"""Fault events and plans: validation, ordering, seeded stochastic churn."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.faults import FaultEvent, FaultPlan


class TestFaultEvent:
    def test_node_event(self):
        event = FaultEvent(1.0, "node_down", node=3)
        assert event.is_topology_event

    def test_link_normalised_to_sorted_pair(self):
        event = FaultEvent(1.0, "link_down", link=(4, 2))
        assert event.link == (2, 4)

    def test_link_loss_carries_rate(self):
        event = FaultEvent(0.5, "link_loss", link=(0, 1), value=0.3)
        assert not event.is_topology_event

    def test_clock_glitch_carries_jump(self):
        event = FaultEvent(2.0, "clock_glitch", node=1, value=-1e-3)
        assert not event.is_topology_event

    @pytest.mark.parametrize("bad", [
        dict(at_s=-1.0, kind="node_down", node=0),
        dict(at_s=0.0, kind="meteor_strike", node=0),
        dict(at_s=0.0, kind="node_down"),                      # missing node
        dict(at_s=0.0, kind="node_down", node=0, link=(0, 1)),
        dict(at_s=0.0, kind="link_down"),                      # missing link
        dict(at_s=0.0, kind="link_down", link=(0, 1), node=2),
        dict(at_s=0.0, kind="link_down", link=(1, 1)),
        dict(at_s=0.0, kind="link_loss", link=(0, 1)),         # missing rate
        dict(at_s=0.0, kind="link_loss", link=(0, 1), value=1.0),
        dict(at_s=0.0, kind="clock_glitch", node=0),           # missing jump
        dict(at_s=0.0, kind="node_down", node=0, value=1.0),
    ])
    def test_invalid_events_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            FaultEvent(**bad)


class TestScriptedPlan:
    def test_sorted_by_time(self):
        plan = FaultPlan.scripted([
            FaultEvent(2.0, "node_up", node=1),
            FaultEvent(1.0, "node_down", node=1),
        ])
        assert [e.at_s for e in plan] == [1.0, 2.0]
        assert plan.horizon_s() == 2.0

    def test_topology_validation(self, chain5):
        with pytest.raises(ConfigurationError, match="node 99"):
            FaultPlan.scripted([FaultEvent(0.0, "node_down", node=99)],
                               chain5)
        with pytest.raises(ConfigurationError, match="link"):
            FaultPlan.scripted([FaultEvent(0.0, "link_down", link=(0, 4))],
                               chain5)

    def test_topology_events_filter(self):
        plan = FaultPlan.scripted([
            FaultEvent(1.0, "link_loss", link=(0, 1), value=0.5),
            FaultEvent(2.0, "link_down", link=(0, 1)),
        ])
        assert [e.kind for e in plan.topology_events()] == ["link_down"]

    def test_empty_plan(self):
        plan = FaultPlan([])
        assert len(plan) == 0
        assert plan.horizon_s() == 0.0


class TestStochasticPlan:
    def test_same_seed_same_plan(self, grid33):
        plans = [FaultPlan.stochastic(
            grid33, np.random.default_rng(7), horizon_s=60.0,
            node_crash_rate=0.05, link_down_rate=0.1,
            link_loss_rate=0.05, clock_glitch_rate=0.02,
            protect_nodes=[0]) for _ in range(2)]
        assert plans[0].events == plans[1].events

    def test_rates_scale_event_count(self, grid33):
        def count(rate):
            return len(FaultPlan.stochastic(
                grid33, np.random.default_rng(3), horizon_s=500.0,
                link_down_rate=rate, mean_downtime_s=1e-6))
        assert count(0.2) > count(0.02)

    def test_protected_nodes_never_crash(self, grid33):
        plan = FaultPlan.stochastic(
            grid33, np.random.default_rng(5), horizon_s=200.0,
            node_crash_rate=0.2, protect_nodes=[0, 4])
        victims = {e.node for e in plan if e.kind.startswith("node")}
        assert victims and not victims & {0, 4}

    def test_every_down_within_horizon_recovery_paired(self, grid33):
        plan = FaultPlan.stochastic(
            grid33, np.random.default_rng(5), horizon_s=300.0,
            link_down_rate=0.05, mean_downtime_s=1.0)
        downs = sum(1 for e in plan if e.kind == "link_down")
        ups = sum(1 for e in plan if e.kind == "link_up")
        assert downs > 0
        # short downtimes: nearly every cut recovers inside the horizon
        assert ups >= downs - 2

    def test_all_victims_exist(self, grid33):
        plan = FaultPlan.stochastic(
            grid33, np.random.default_rng(9), horizon_s=100.0,
            node_crash_rate=0.05, link_down_rate=0.05,
            link_loss_rate=0.05, clock_glitch_rate=0.05)
        for event in plan:
            if event.node is not None:
                assert event.node in grid33.graph
            if event.link is not None:
                assert grid33.has_link(event.link)

    def test_zero_rates_empty_plan(self, grid33):
        plan = FaultPlan.stochastic(grid33, np.random.default_rng(1),
                                    horizon_s=100.0)
        assert len(plan) == 0

    def test_invalid_parameters(self, grid33):
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigurationError):
            FaultPlan.stochastic(grid33, rng, horizon_s=0.0)
        with pytest.raises(ConfigurationError):
            FaultPlan.stochastic(grid33, rng, horizon_s=1.0,
                                 mean_downtime_s=0.0)
        with pytest.raises(ConfigurationError, match="protected"):
            FaultPlan.stochastic(grid33, rng, horizon_s=1.0,
                                 node_crash_rate=1.0,
                                 protect_nodes=grid33.nodes)
