"""Service-class model: contracts, validation, flow bridges."""

import pytest

from repro.errors import ConfigurationError
from repro.net.flows import Flow
from repro.net.topology import chain_topology
from repro.qos import (
    ServiceClass,
    ServiceFlow,
    ServiceFlowSet,
    TrafficContract,
    route_service_flows,
)


def ugs(name="u0", **kwargs):
    contract = TrafficContract(min_reserved_rate_bps=80_000,
                               max_latency_s=0.05, **kwargs)
    return ServiceFlow(name, 1, 0, ServiceClass.UGS, contract)


class TestContracts:
    def test_class_properties(self):
        assert ServiceClass.UGS.rank < ServiceClass.RTPS.rank \
            < ServiceClass.NRTPS.rank < ServiceClass.BE.rank
        assert ServiceClass.BE.is_guaranteed is False
        assert ServiceClass.RTPS.is_guaranteed
        assert ServiceClass.UGS.default_weight > ServiceClass.BE.default_weight

    def test_ugs_requires_latency(self):
        with pytest.raises(ConfigurationError, match="latency"):
            ServiceFlow("u", 1, 0, ServiceClass.UGS,
                        TrafficContract(min_reserved_rate_bps=80_000))

    def test_ugs_sustained_must_match_reservation(self):
        with pytest.raises(ConfigurationError, match="unsolicited"):
            ServiceFlow("u", 1, 0, ServiceClass.UGS, TrafficContract(
                min_reserved_rate_bps=80_000,
                max_sustained_rate_bps=160_000, max_latency_s=0.05))

    def test_rtps_may_burst_above_reservation(self):
        flow = ServiceFlow("v", 2, 0, ServiceClass.RTPS, TrafficContract(
            min_reserved_rate_bps=100_000, max_sustained_rate_bps=400_000,
            max_latency_s=0.1))
        assert flow.demand_rate_bps == 100_000
        assert flow.offered_rate_bps == 400_000

    def test_nrtps_rejects_latency_bound(self):
        with pytest.raises(ConfigurationError, match="nrtPS"):
            ServiceFlow("s", 1, 0, ServiceClass.NRTPS, TrafficContract(
                min_reserved_rate_bps=100_000, max_latency_s=0.1))

    def test_be_cannot_reserve(self):
        with pytest.raises(ConfigurationError, match="reserve"):
            ServiceFlow("b", 1, 0, ServiceClass.BE,
                        TrafficContract(min_reserved_rate_bps=1000,
                                        max_sustained_rate_bps=2000))

    def test_be_needs_an_ask(self):
        with pytest.raises(ConfigurationError, match="sustained"):
            ServiceFlow("b", 1, 0, ServiceClass.BE, TrafficContract())

    def test_sustained_cannot_undercut_reservation(self):
        with pytest.raises(ConfigurationError, match="undercut"):
            TrafficContract(min_reserved_rate_bps=100_000,
                            max_sustained_rate_bps=50_000)

    def test_deadline_inf_without_latency_bound(self):
        be = ServiceFlow("b", 1, 0, ServiceClass.BE,
                         TrafficContract(max_sustained_rate_bps=1e6))
        assert be.deadline_s == float("inf")
        assert ugs().deadline_s == 0.05


class TestFlowBridge:
    def test_to_flow_carries_reservation_and_budget(self):
        flow = ugs().to_flow()
        assert isinstance(flow, Flow)
        assert flow.rate_bps == 80_000
        assert flow.delay_budget_s == 0.05

    def test_be_to_flow_has_no_budget(self):
        be = ServiceFlow("b", 1, 0, ServiceClass.BE,
                         TrafficContract(max_sustained_rate_bps=1e6))
        flow = be.to_flow()
        assert flow.delay_budget_s is None
        assert flow.rate_bps == 1e6

    def test_from_flow_round_trip(self):
        base = Flow("v", 0, 3, rate_bps=64_000, delay_budget_s=0.1)
        sf = ServiceFlow.from_flow(base, ServiceClass.RTPS)
        assert sf.contract.min_reserved_rate_bps == 64_000
        assert sf.contract.max_latency_s == 0.1
        again = sf.to_flow()
        assert (again.name, again.src, again.dst, again.rate_bps,
                again.delay_budget_s) == ("v", 0, 3, 64_000, 0.1)

    def test_from_flow_best_effort(self):
        base = Flow("b", 0, 3, rate_bps=800_000)
        sf = ServiceFlow.from_flow(base, ServiceClass.BE)
        assert sf.contract.max_sustained_rate_bps == 800_000
        assert sf.contract.min_reserved_rate_bps == 0


class TestServiceFlowSet:
    def make_set(self):
        return ServiceFlowSet([
            ugs("u0"),
            ServiceFlow("v0", 2, 0, ServiceClass.RTPS, TrafficContract(
                min_reserved_rate_bps=100_000, max_latency_s=0.1)),
            ServiceFlow("b0", 3, 0, ServiceClass.BE,
                        TrafficContract(max_sustained_rate_bps=1e6)),
        ])

    def test_partitions(self):
        flows = self.make_set()
        assert [f.name for f in flows.guaranteed()] == ["u0", "v0"]
        assert [f.name for f in flows.best_effort()] == ["b0"]
        assert [f.name for f in flows.by_class(ServiceClass.UGS)] == ["u0"]

    def test_duplicate_rejected(self):
        flows = self.make_set()
        with pytest.raises(ConfigurationError, match="duplicate"):
            flows.add(ugs("u0"))

    def test_remove_unknown_raises(self):
        with pytest.raises(ConfigurationError, match="no service flow"):
            self.make_set().remove("ghost")

    def test_flow_set_projections_preserve_order(self):
        flows = self.make_set()
        assert flows.to_flow_set().names() == ["u0", "v0", "b0"]
        assert flows.guaranteed_flow_set().names() == ["u0", "v0"]
        assert flows.best_effort_flow_set().names() == ["b0"]

    def test_routing(self):
        topo = chain_topology(4)
        routed = route_service_flows(topo, ServiceFlowSet([
            ServiceFlow("v0", 3, 0, ServiceClass.RTPS, TrafficContract(
                min_reserved_rate_bps=100_000, max_latency_s=0.1))]))
        assert routed.get("v0").route == ((3, 2), (2, 1), (1, 0))
