"""HealthMonitor: sync-error envelopes, guard widening, fail-safe mute."""

import pytest

from repro import obs
from repro.errors import ConfigurationError
from repro.mesh16.frame import default_frame_config
from repro.resilience import HealthMonitor, ResilienceConfig
from repro.sim.trace import Trace
from repro.units import US

FRAME = default_frame_config()
GUARD = FRAME.guard_s
SLOT = FRAME.data_slot_s

# drift_bound_ppm=50 -> envelope grows at 2 * 50e-6 = 1e-4 s per second
CONFIG = ResilienceConfig(drift_bound_ppm=50.0, sync_residual_s=0.0,
                          mute_guard_multiple=2.0)


@pytest.fixture
def monitor():
    return HealthMonitor(FRAME, CONFIG)


def test_root_is_the_reference_clock(monitor):
    assert monitor.worst_case_error_s(0, 100.0) == 0.0
    assert monitor.check_mute(0, 100.0) is False
    assert monitor.tx_allowance(0, 100.0) == (0.0, SLOT - GUARD)


def test_envelope_is_residual_plus_mutual_drift():
    config = ResilienceConfig(drift_bound_ppm=50.0, sync_residual_s=20 * US)
    monitor = HealthMonitor(FRAME, config)
    monitor.note_adoption(3, 10.0)
    # residual + 2 * drift * elapsed
    assert monitor.worst_case_error_s(3, 10.0) == pytest.approx(20 * US)
    assert monitor.worst_case_error_s(3, 12.0) == pytest.approx(
        20 * US + 2 * 50e-6 * 2.0)


def test_adoption_recorded_in_the_future_rejected(monitor):
    monitor.note_adoption(3, 10.0)
    with pytest.raises(ConfigurationError):
        monitor.worst_case_error_s(3, 9.0)


def test_fresh_node_gets_undegraded_allowance(monitor):
    monitor.note_adoption(5, 0.0)
    extra, airtime = monitor.tx_allowance(5, 0.1)
    assert extra == 0.0
    assert airtime == pytest.approx(SLOT - GUARD - monitor.
                                    worst_case_error_s(5, 0.1))


def test_guard_widens_continuously_past_the_guard():
    monitor = HealthMonitor(FRAME, CONFIG)
    # envelope exceeds the 60 us guard after 0.6 s without adoption
    elapsed = 1.0
    wc = monitor.worst_case_error_s(7, elapsed)
    assert wc > GUARD
    extra, airtime = monitor.tx_allowance(7, elapsed)
    assert extra == pytest.approx(wc - GUARD)
    assert airtime == pytest.approx(SLOT - 2 * wc)
    # the widened window still fits the slot at every neighbour's clock:
    # start = guard + extra = wc >= wc, end = start + airtime + wc = slot
    assert (GUARD + extra) + airtime + wc == pytest.approx(SLOT)


def test_mute_past_hard_threshold_and_unmute_on_adoption():
    monitor = HealthMonitor(FRAME, CONFIG, trace=Trace())
    with obs.use_registry(obs.MetricsRegistry()) as registry:
        # threshold: wc > 2 * guard = 120 us -> elapsed > 1.2 s
        assert monitor.check_mute(7, 1.0) is False
        assert monitor.check_mute(7, 1.5) is True
        assert monitor.is_muted(7)
        assert monitor.state(7, 1.5) == "muted"
        assert monitor.muted_nodes() == frozenset({7})
        # silence persists at later opportunities until an adoption
        assert monitor.check_mute(7, 2.0) is True
        monitor.note_adoption(7, 2.5)
        assert not monitor.is_muted(7)
        assert monitor.check_mute(7, 2.6) is False
        counters = registry.snapshot()["counters"]
    assert counters["resilience.mute_events"] == 1
    assert counters["resilience.unmute_events"] == 1
    assert monitor.mute_windows(7) == ((1.5, 2.5),)
    assert monitor.trace.count("resilience.mute") == 1
    assert monitor.trace.count("resilience.unmute") == 1


def test_state_progression_ok_degraded_muted(monitor):
    monitor.note_adoption(4, 0.0)
    # degrade fraction 0.5 -> wc > 30 us -> elapsed > 0.3 s
    assert monitor.state(4, 0.1) == "ok"
    assert monitor.state(4, 0.5) == "degraded"
    monitor.check_mute(4, 2.0)
    assert monitor.state(4, 2.0) == "muted"


def test_degraded_events_counted_once_per_excursion(monitor):
    with obs.use_registry(obs.MetricsRegistry()) as registry:
        monitor.note_adoption(4, 0.0)
        monitor.tx_allowance(4, 0.5)   # enters degraded
        monitor.tx_allowance(4, 0.6)   # still degraded, no double count
        monitor.note_adoption(4, 0.7)  # recovers
        monitor.tx_allowance(4, 1.2)   # second excursion
        counters = registry.snapshot()["counters"]
    assert counters["resilience.degraded_events"] == 2


def test_config_validation():
    with pytest.raises(ConfigurationError):
        ResilienceConfig(coverage_target=0.0)
    with pytest.raises(ConfigurationError):
        ResilienceConfig(reflood_interval_frames=0)
    with pytest.raises(ConfigurationError):
        ResilienceConfig(drift_bound_ppm=-1.0)
    with pytest.raises(ConfigurationError):
        ResilienceConfig(mute_guard_multiple=0.0)
