"""Unit-conversion helpers."""

import pytest

from repro import units


def test_microseconds():
    assert units.microseconds(5) == pytest.approx(5e-6)


def test_milliseconds():
    assert units.milliseconds(10) == pytest.approx(0.01)


def test_seconds_identity():
    assert units.seconds(3) == 3.0
    assert isinstance(units.seconds(3), float)


def test_kbps():
    assert units.kbps(64) == pytest.approx(64_000)


def test_mbps():
    assert units.mbps(11) == pytest.approx(11e6)


def test_bytes_to_bits():
    assert units.bytes_to_bits(200) == 1600


def test_bits_to_bytes():
    assert units.bits_to_bytes(12) == pytest.approx(1.5)


def test_ppm():
    assert units.ppm(10) == pytest.approx(1e-5)


def test_ppm_drift_over_interval():
    # a 10 ppm clock gains at most 10 us over one second
    assert units.ppm(10) * 1.0 == pytest.approx(10e-6)


def test_constants_consistency():
    assert units.MS == 1000 * units.US
    assert units.MBPS == 1000 * units.KBPS
