"""Periodic timer helper."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.engine import Simulator
from repro.sim.process import PeriodicTimer


def test_fires_every_period(sim):
    ticks = []
    PeriodicTimer(sim, 1.0, lambda: ticks.append(sim.now))
    sim.run(until=5.5)
    assert ticks == [1.0, 2.0, 3.0, 4.0, 5.0]


def test_start_delay_overrides_first_fire(sim):
    ticks = []
    PeriodicTimer(sim, 1.0, lambda: ticks.append(sim.now), start_delay=0.25)
    sim.run(until=3.0)
    assert ticks == [0.25, 1.25, 2.25]


def test_stop_suppresses_future_fires(sim):
    ticks = []
    timer = PeriodicTimer(sim, 1.0, lambda: ticks.append(sim.now))
    sim.schedule(2.5, timer.stop)
    sim.run(until=10.0)
    assert ticks == [1.0, 2.0]
    assert not timer.running


def test_callback_can_stop_its_own_timer(sim):
    timer = None
    ticks = []

    def tick():
        ticks.append(sim.now)
        if len(ticks) == 3:
            timer.stop()

    timer = PeriodicTimer(sim, 1.0, tick)
    sim.run(until=20.0)
    assert len(ticks) == 3


def test_fired_counter(sim):
    timer = PeriodicTimer(sim, 0.5, lambda: None)
    sim.run(until=2.0)
    assert timer.fired == 4


def test_no_phase_drift_from_slow_callbacks(sim):
    # the timer reschedules from the nominal fire time, so a callback that
    # schedules other work cannot skew the cadence
    ticks = []

    def tick():
        ticks.append(sim.now)
        sim.schedule(0.3, lambda: None)  # unrelated work

    PeriodicTimer(sim, 1.0, tick)
    sim.run(until=4.5)
    assert ticks == [1.0, 2.0, 3.0, 4.0]


def test_invalid_period_rejected(sim):
    with pytest.raises(ConfigurationError):
        PeriodicTimer(sim, 0.0, lambda: None)
    with pytest.raises(ConfigurationError):
        PeriodicTimer(sim, -1.0, lambda: None)


def test_args_passed_to_callback(sim):
    seen = []
    PeriodicTimer(sim, 1.0, lambda a, b: seen.append((a, b)), "x", 2)
    sim.run(until=1.0)
    assert seen == [("x", 2)]
