"""Failure injection: a link degrades, dies, and the mesh repairs in-band.

End-to-end recovery story built entirely from public APIs -- the fault
subsystem drives the hooks, the repair engine reacts, the overlay floods:

1. a flow runs over its shortest path; a scripted :class:`FaultPlan` then
   degrades one of its links to 50 % loss and, a second later, cuts it;
2. the :class:`FaultInjector` applies both faults through the channel
   hooks and notifies the :class:`RepairEngine`, which locally reroutes
   the flow around the dead link and repairs the schedule without an ILP;
3. the gateway floods the repaired schedule through the control subframe;
4. after the activation frame, deliveries resume loss-free over the
   detour while the dead link carries no slots.
"""

import pytest

from repro.core.repair import RepairEngine
from repro.faults import FaultEvent, FaultInjector, FaultPlan
from repro.mesh16.frame import default_frame_config
from repro.mesh16.network import ControlPlane
from repro.net.flows import Flow
from repro.net.forwarding import SourceRoutedForwarder
from repro.net.topology import grid_topology
from repro.overlay.distribution import ScheduleDistributor
from repro.overlay.emulation import TdmaOverlay
from repro.overlay.sync import SyncConfig, SyncDaemon
from repro.phy.channel import BroadcastChannel
from repro.sim.clock import DriftingClock
from repro.sim.engine import Simulator
from repro.sim.random import RngRegistry
from repro.sim.trace import Trace
from repro.traffic.sink import SinkRegistry
from repro.traffic.sources import CbrSource
from repro.traffic.voip import G729
from repro.units import ppm


@pytest.mark.slow
def test_injected_faults_repair_and_redistribute():
    topology = grid_topology(3, 3)
    frame = default_frame_config()
    rngs = RngRegistry(seed=55)
    sim = Simulator()
    trace = Trace(capacity=100_000)
    channel = BroadcastChannel(sim, topology, frame.phy, trace)
    channel.set_error_model(rngs.stream("fading"))  # lossless until faulted

    # flow 0 -> 2 along the top edge; link (1, 2) will degrade, then die.
    # Each phase uses its own flow name so the per-flow sinks (which dedup
    # on sequence numbers) stay independent.
    bad_link = (1, 2)

    def phase_flow(name, route):
        return Flow(name, 0, 2, rate_bps=G729.wire_rate_bps,
                    delay_budget_s=0.1).with_route(route)

    engine = RepairEngine(topology, frame, gateway=0)
    engine.install([Flow("voip", 0, 2, rate_bps=G729.wire_rate_bps,
                         delay_budget_s=0.1)])
    primary_route = engine.carried_flows[0].route
    assert bad_link in primary_route  # shortest path crosses the victim
    schedule_v1 = engine.schedule

    plan = FaultPlan.scripted([
        FaultEvent(1.0, "link_loss", link=bad_link, value=0.5),
        FaultEvent(2.0, "link_down", link=bad_link),
    ], topology)
    injector = FaultInjector(plan, topology, sim=sim, channel=channel,
                             listeners=[engine])
    injector.arm()

    clocks, daemons = {}, {}
    for node in topology.nodes:
        skew = 0.0 if node == 0 else float(
            rngs.stream(f"skew/{node}").uniform(-ppm(10), ppm(10)))
        clocks[node] = DriftingClock(skew=skew)
        daemons[node] = SyncDaemon(node, 0, clocks[node], SyncConfig(),
                                   rngs.stream(f"sync/{node}"), trace)
    sinks = SinkRegistry()
    overlay = TdmaOverlay(sim, topology, channel, frame,
                          ControlPlane(topology, 0, frame), schedule_v1,
                          clocks, daemons,
                          on_packet=lambda n, p: forwarder.packet_arrived(
                              n, p, sim.now),
                          trace=trace)
    forwarder = SourceRoutedForwarder(overlay, sinks.on_delivered, trace)
    distributor = ScheduleDistributor(overlay, gateway=0)
    overlay.attach_distributor(distributor)
    overlay.start()

    # phase 1 (0..1 s): healthy
    source_a = CbrSource.for_codec(sim, phase_flow("healthy", primary_route),
                                   forwarder.originate, G729, stop_s=1.0)
    sim.run(until=1.0)
    assert sinks.sink("healthy").received == source_a.sent

    # phase 2 (1..2 s): the injected loss step degrades the link to 50 %
    source_b = CbrSource.for_codec(sim, phase_flow("degraded", primary_route),
                                   forwarder.originate, G729, stop_s=2.0)
    sim.run(until=2.0)
    degraded = sinks.sink("degraded")
    assert degraded.received < source_b.sent * 0.85  # visible degradation

    # phase 3: the link dies; the repair engine reroutes and repairs the
    # schedule locally (no ILP), and the gateway floods the new version.
    sim.run(until=2.01)
    assert channel.link_is_down(bad_link)
    outcome = engine.history[-1]
    assert outcome.changed and outcome.feasible
    assert outcome.strategy == "local" and outcome.ilp_probes == 0
    assert outcome.rerouted == ("voip",)
    new_route = engine.carried_flows[0].route
    assert bad_link not in new_route
    assert not engine.schedule.restrict(
        [bad_link, bad_link[::-1]]).links()  # dead link carries no slots
    current_frame = frame.frame_index_at_local(
        clocks[0].local_time(sim.now))
    distributor.announce(engine.schedule, activation_frame=current_frame + 15)

    activation_s = (current_frame + 15) * frame.frame_duration_s
    sim.run(until=activation_s + 0.05)
    assert distributor.coverage() == 1.0

    # phase 4: traffic on the detour is loss-free again
    source_c = CbrSource.for_codec(sim, phase_flow("recovered", new_route),
                                   forwarder.originate, G729,
                                   stop_s=sim.now + 1.0)
    sim.run(until=sim.now + 1.2)
    recovered = sinks.sink("recovered")
    assert recovered.received == source_c.sent
    assert recovered.received > 0
