"""Failure injection: a link degrades, the mesh reschedules in-band.

End-to-end recovery story built entirely from public APIs:

1. a flow runs over its shortest path; one of its links then suffers a
   50 % reception error rate (injected fading);
2. operations notice the loss, route the flow around the bad link, and the
   gateway floods a new schedule version through the control subframe;
3. after the activation frame, deliveries resume loss-free over the detour
   while the old path's slots are gone.
"""

import networkx as nx
import pytest

from repro.core.conflict import conflict_graph
from repro.core.ilp import SchedulingProblem, solve_schedule_ilp
from repro.core.schedule import Schedule
from repro.mesh16.frame import default_frame_config
from repro.mesh16.network import ControlPlane
from repro.net.flows import Flow, FlowSet
from repro.net.forwarding import SourceRoutedForwarder
from repro.net.topology import grid_topology
from repro.overlay.distribution import ScheduleDistributor
from repro.overlay.emulation import TdmaOverlay
from repro.overlay.sync import SyncConfig, SyncDaemon
from repro.phy.channel import BroadcastChannel
from repro.sim.clock import DriftingClock
from repro.sim.engine import Simulator
from repro.sim.random import RngRegistry
from repro.sim.trace import Trace
from repro.traffic.sink import SinkRegistry
from repro.traffic.sources import CbrSource
from repro.traffic.voip import G729
from repro.units import ppm


def schedule_for(topology, flows, frame):
    demands = flows.link_demands(frame.frame_duration_s,
                                 frame.data_slot_capacity_bits)
    conflicts = conflict_graph(topology, hops=2, links=demands.keys())
    result = solve_schedule_ilp(SchedulingProblem(
        conflicts, demands, frame.data_slots))
    assert result.feasible
    return result.schedule


def detour_route(topology, src, dst, avoid_link):
    graph = topology.graph.copy()
    graph.remove_edge(*sorted(avoid_link))
    path = nx.shortest_path(graph, src, dst)
    return tuple((a, b) for a, b in zip(path, path[1:]))


@pytest.mark.slow
def test_reroute_and_redistribute_recovers_from_link_degradation():
    topology = grid_topology(3, 3)
    frame = default_frame_config()
    rngs = RngRegistry(seed=55)
    sim = Simulator()
    trace = Trace(capacity=100_000)
    channel = BroadcastChannel(sim, topology, frame.phy, trace)

    # flow 0 -> 2 along the top edge; link (1, 2) will degrade.  Each
    # phase uses its own flow name so the per-flow sinks (which dedup on
    # sequence numbers) stay independent.
    bad_link = (1, 2)
    primary_route = ((0, 1), (1, 2))

    def phase_flow(name):
        return Flow(name, 0, 2, rate_bps=G729.wire_rate_bps,
                    delay_budget_s=0.1).with_route(primary_route)

    schedule_v1 = schedule_for(topology, FlowSet([phase_flow("voip")]),
                               frame)

    clocks, daemons = {}, {}
    for node in topology.nodes:
        skew = 0.0 if node == 0 else float(
            rngs.stream(f"skew/{node}").uniform(-ppm(10), ppm(10)))
        clocks[node] = DriftingClock(skew=skew)
        daemons[node] = SyncDaemon(node, 0, clocks[node], SyncConfig(),
                                   rngs.stream(f"sync/{node}"), trace)
    sinks = SinkRegistry()
    overlay = TdmaOverlay(sim, topology, channel, frame,
                          ControlPlane(topology, 0, frame), schedule_v1,
                          clocks, daemons,
                          on_packet=lambda n, p: forwarder.packet_arrived(
                              n, p, sim.now),
                          trace=trace)
    forwarder = SourceRoutedForwarder(overlay, sinks.on_delivered, trace)
    distributor = ScheduleDistributor(overlay, gateway=0)
    overlay.attach_distributor(distributor)
    overlay.start()

    # phase 1 (0..1 s): healthy
    source_a = CbrSource.for_codec(sim, phase_flow("healthy"),
                                   forwarder.originate, G729, stop_s=1.0)
    sim.run(until=1.0)
    assert sinks.sink("healthy").received == source_a.sent

    # phase 2 (1..2 s): the link degrades to 50 % loss
    channel.set_error_model(rngs.stream("fading"),
                            per_link={bad_link: 0.5})
    source_b = CbrSource.for_codec(sim, phase_flow("degraded"),
                                   forwarder.originate, G729, stop_s=2.0)
    sim.run(until=2.0)
    degraded = sinks.sink("degraded")
    assert degraded.received < source_b.sent * 0.85  # visible degradation

    # phase 3: operations reroute around the bad link and redistribute
    new_route = detour_route(topology, 0, 2, bad_link)
    assert bad_link not in new_route
    rerouted = Flow("recovered", 0, 2, rate_bps=G729.wire_rate_bps,
                    delay_budget_s=0.1).with_route(new_route)
    schedule_v2 = schedule_for(topology, FlowSet([rerouted]), frame)
    current_frame = frame.frame_index_at_local(
        clocks[0].local_time(sim.now))
    distributor.announce(schedule_v2, activation_frame=current_frame + 15)

    activation_s = (current_frame + 15) * frame.frame_duration_s
    sim.run(until=activation_s + 0.05)
    assert distributor.coverage() == 1.0

    # phase 4: traffic on the detour is loss-free again
    source_c = CbrSource.for_codec(sim, rerouted, forwarder.originate,
                                   G729, stop_s=sim.now + 1.0)
    sim.run(until=sim.now + 1.2)
    recovered = sinks.sink("recovered")
    assert recovered.received == source_c.sent
    assert recovered.received > 0
