"""RTS/CTS virtual carrier sense."""

import dataclasses

import pytest

from repro.dot11.dcf import DcfMac
from repro.dot11.params import DOT11B_PARAMS
from repro.phy.channel import BroadcastChannel
from repro.sim.engine import Simulator
from repro.sim.random import RngRegistry
from repro.sim.trace import Trace
from repro.net.topology import chain_topology

RTS_PARAMS = dataclasses.replace(DOT11B_PARAMS, rts_threshold_bits=1000)


def build(topology, params=RTS_PARAMS, seed=5):
    sim = Simulator()
    trace = Trace(capacity=50_000)
    channel = BroadcastChannel(sim, topology, params.phy, trace)
    rngs = RngRegistry(seed=seed)
    delivered = []

    def deliver(node, payload):
        delivered.append((sim.now, node, payload))

    macs = {node: DcfMac(sim, channel, node, params,
                         rngs.stream(f"dcf/{node}"), deliver, trace)
            for node in topology.nodes}
    return sim, macs, delivered, trace


class TestHandshake:
    def test_large_frame_uses_rts(self):
        topo = chain_topology(2)
        sim, macs, delivered, trace = build(topo)
        macs[0].send(1, "big", 8000)
        sim.run(until=0.1)
        assert [p for ____, ____, p in delivered] == ["big"]
        kinds = [r["kind"] for r in trace.records("phy.tx")]
        assert kinds == ["rts", "cts", "data", "ack"]

    def test_small_frame_skips_rts(self):
        topo = chain_topology(2)
        sim, macs, delivered, trace = build(topo)
        macs[0].send(1, "small", 200)
        sim.run(until=0.1)
        assert [p for ____, ____, p in delivered] == ["small"]
        kinds = [r["kind"] for r in trace.records("phy.tx")]
        assert kinds == ["data", "ack"]

    def test_broadcast_never_uses_rts(self):
        topo = chain_topology(2)
        sim, macs, ____, trace = build(topo)
        macs[0].send(None, "bcast", 8000)
        sim.run(until=0.1)
        kinds = [r["kind"] for r in trace.records("phy.tx")]
        assert kinds == ["data"]

    def test_disabled_threshold_never_uses_rts(self):
        topo = chain_topology(2)
        sim, macs, ____, trace = build(topo, params=DOT11B_PARAMS)
        macs[0].send(1, "big", 8000)
        sim.run(until=0.1)
        assert all(r["kind"] != "rts" for r in trace.records("phy.tx"))


class TestNav:
    def test_overhearing_station_defers_for_nav(self):
        # 0 -> 1 with RTS; node 2 hears 1's CTS and must not transmit
        # during the protected exchange
        topo = chain_topology(3)
        sim, macs, delivered, trace = build(topo)
        macs[0].send(1, "protected", 12000)
        sim.run(until=0.001)  # RTS+CTS done, data in flight
        macs[2].send(1, "late", 200)
        sim.run(until=0.2)
        payloads = [p for ____, ____, p in delivered]
        assert payloads[0] == "protected"  # no hidden-terminal corruption
        assert "late" in payloads

    def test_missing_cts_retries_then_drops(self):
        topo = chain_topology(2)
        sim, macs, ____, trace = build(topo)
        macs[0].send(5, "ghost", 8000)  # 5 unreachable: CTS never comes
        sim.run(until=5.0)
        assert trace.count("mac.cts_timeout") == RTS_PARAMS.retry_limit + 1
        assert trace.count("mac.drop") == 1
        assert macs[0].queue_length == 0

    def test_hidden_terminal_losses_reduced_with_rts(self):
        """The point of RTS: hidden stations stop corrupting long frames."""

        def run(params, seed):
            topo = chain_topology(3)
            sim, macs, delivered, trace = build(topo, params=params,
                                                seed=seed)
            for i in range(40):
                macs[0].send(1, f"a{i}", 12000)
                macs[2].send(1, f"b{i}", 12000)
            sim.run(until=3.0)
            return trace.count("phy.rx_collision"), len(delivered)

        plain_collisions, plain_ok = run(DOT11B_PARAMS, seed=11)
        rts_collisions, rts_ok = run(RTS_PARAMS, seed=11)
        # collisions involving long data frames should drop sharply; the
        # residual collisions are cheap RTS-on-RTS ones
        assert rts_ok >= plain_ok
        assert rts_collisions <= plain_collisions
