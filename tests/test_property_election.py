"""Property-based tests for mesh election."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mesh16.election import ElectionControlPlane
from repro.mesh16.frame import default_frame_config
from repro.net.topology import random_disk_topology


@st.composite
def disk_topologies(draw):
    seed = draw(st.integers(0, 100))
    n = draw(st.integers(4, 12))
    return random_disk_topology(n, 350.0, 700.0,
                                np.random.default_rng(seed))


@given(disk_topologies(), st.integers(4, 32))
@settings(max_examples=40, deadline=None)
def test_winner_separation_invariant(topology, holdoff):
    """On any topology and holdoff, simultaneous winners are always more
    than two hops apart and holdoffs are respected."""
    plane = ElectionControlPlane(topology, topology.nodes[0],
                                 default_frame_config(),
                                 holdoff_opportunities=holdoff)
    last_win: dict[int, int] = {}
    for opportunity in range(80):
        winners = sorted(plane.winners(opportunity))
        for i, a in enumerate(winners):
            for b in winners[i + 1:]:
                assert topology.hop_distance(a, b) > 2
        for node in winners:
            if node in last_win:
                assert opportunity - last_win[node] >= holdoff
            last_win[node] = opportunity


@given(disk_topologies())
@settings(max_examples=30, deadline=None)
def test_no_starvation(topology):
    plane = ElectionControlPlane(topology, topology.nodes[0],
                                 default_frame_config(),
                                 holdoff_opportunities=8)
    wins = {n: 0 for n in topology.nodes}
    horizon = 40 * topology.num_nodes()
    for opportunity in range(horizon):
        for node in plane.winners(opportunity):
            wins[node] += 1
    assert all(count > 0 for count in wins.values()), wins
