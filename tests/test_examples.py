"""The shipped examples must at least compile -- and the quick one, run."""

import pathlib
import py_compile
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
ALL_EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {path.name for path in ALL_EXAMPLES}
    assert {"quickstart.py", "voip_mesh.py", "emulation_demo.py",
            "admission_control.py", "multi_service.py"} <= names


@pytest.mark.parametrize("path", ALL_EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path):
    py_compile.compile(str(path), doraise=True)


def test_quickstart_runs_end_to_end():
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True, text=True, timeout=300)
    assert completed.returncode == 0, completed.stderr
    assert "minimum guaranteed region" in completed.stdout
    assert "end-to-end relaying delay" in completed.stdout


@pytest.mark.slow
def test_multi_service_runs_end_to_end():
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "multi_service.py")],
        capture_output=True, text=True, timeout=500)
    assert completed.returncode == 0, completed.stderr
    assert "guaranteed region" in completed.stdout
    assert "flooded to 100%" in completed.stdout
