"""Property-based tests for clocks and guard arithmetic."""

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.overlay.guard import max_resync_interval_s, required_guard_s
from repro.sim.clock import DriftingClock
from repro.units import ppm

skews = st.floats(min_value=-100e-6, max_value=100e-6,
                  allow_nan=False, allow_infinity=False)
offsets = st.floats(min_value=-1.0, max_value=1.0,
                    allow_nan=False, allow_infinity=False)
times = st.floats(min_value=0.0, max_value=1e4,
                  allow_nan=False, allow_infinity=False)


@given(skews, offsets, times)
@settings(max_examples=200, deadline=None)
def test_local_true_roundtrip(skew, offset, t):
    clock = DriftingClock(skew=skew, offset=offset)
    assert clock.true_time(clock.local_time(t)) == pytest.approx(
        t, abs=1e-6, rel=1e-9)


@given(skews, times, times)
@settings(max_examples=200, deadline=None)
def test_local_time_monotone(skew, t1, t2):
    clock = DriftingClock(skew=skew)
    lo, hi = min(t1, t2), max(t1, t2)
    assert clock.local_time(lo) <= clock.local_time(hi)


@given(skews, offsets, times,
       st.floats(min_value=-0.1, max_value=0.1, allow_nan=False))
@settings(max_examples=200, deadline=None)
def test_step_changes_only_future(skew, offset, t, correction):
    clock = DriftingClock(skew=skew, offset=offset)
    before = clock.local_time(t)
    clock.step(t, correction)
    assert clock.local_time(t) == pytest.approx(before + correction,
                                                abs=1e-9)
    # rate unchanged: one second later the gap is still the correction
    gap = clock.local_time(t + 1.0) - (before + (1 + skew) + correction)
    assert abs(gap) < 1e-9


@given(skews, times)
@settings(max_examples=100, deadline=None)
def test_offset_grows_at_skew_rate(skew, t):
    clock = DriftingClock(skew=skew)
    assert clock.offset_at(t) == pytest.approx(skew * t, abs=1e-9,
                                               rel=1e-9)


@given(st.floats(min_value=0.1, max_value=100.0, allow_nan=False),
       st.floats(min_value=0.01, max_value=100.0, allow_nan=False),
       st.floats(min_value=0.0, max_value=1e-3, allow_nan=False))
@settings(max_examples=200, deadline=None)
def test_guard_resync_inverse_roundtrip(drift, interval, residual):
    guard = required_guard_s(drift, interval, sync_residual_s=residual)
    recovered = max_resync_interval_s(guard, drift,
                                      sync_residual_s=residual)
    assert recovered == pytest.approx(interval, rel=1e-9)


@given(st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
       st.floats(min_value=0.0, max_value=100.0, allow_nan=False))
@settings(max_examples=100, deadline=None)
def test_guard_monotone_in_both_inputs(drift, interval):
    base = required_guard_s(drift, interval)
    assert required_guard_s(drift + 1, interval) >= base
    assert required_guard_s(drift, interval + 1) >= base


@given(skews, skews, times)
@settings(max_examples=100, deadline=None)
def test_mutual_error_bounded_by_guard_model(skew_a, skew_b, t):
    """The guard dimensioning's core claim: two clocks resynced at t=0 drift
    apart by at most 2 * drift_bound * elapsed."""
    a = DriftingClock(skew=skew_a)
    b = DriftingClock(skew=skew_b)
    bound_ppm = max(abs(skew_a), abs(skew_b)) / 1e-6
    mutual = abs(a.local_time(t) - b.local_time(t))
    assert mutual <= 2 * ppm(bound_ppm) * t + 1e-12
