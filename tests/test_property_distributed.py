"""Property-based tests: distributed scheduling and two-class packing."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.besteffort import pack_best_effort, schedule_two_classes
from repro.core.conflict import conflict_graph
from repro.errors import InfeasibleScheduleError
from repro.mesh16.distributed import DistributedScheduler
from repro.phy.interference import interference_graph
from repro.net.topology import chain_topology, grid_topology, random_disk_topology


@st.composite
def random_instances(draw):
    """A topology plus a random sparse demand vector."""
    kind = draw(st.sampled_from(["chain", "grid", "disk"]))
    if kind == "chain":
        topology = chain_topology(draw(st.integers(3, 9)))
    elif kind == "grid":
        topology = grid_topology(draw(st.integers(2, 3)),
                                 draw(st.integers(2, 3)))
    else:
        seed = draw(st.integers(0, 50))
        topology = random_disk_topology(
            draw(st.integers(5, 10)), 350.0, 700.0,
            np.random.default_rng(seed))
    links = topology.links
    k = draw(st.integers(1, min(8, len(links))))
    chosen = draw(st.lists(st.integers(0, len(links) - 1),
                           min_size=k, max_size=k, unique=True))
    demands = {links[i]: draw(st.integers(1, 3)) for i in chosen}
    return topology, demands


@given(random_instances())
@settings(max_examples=60, deadline=None)
def test_distributed_outcome_always_interference_free(instance):
    """Whatever the handshake commits is physically collision-free, and
    served demand is exactly the ask."""
    topology, demands = instance
    scheduler = DistributedScheduler(topology, frame_slots=48,
                                     max_cycles=32)
    outcome = scheduler.run(demands)
    outcome.schedule.validate(interference_graph(topology))
    for link, demand in demands.items():
        if link not in outcome.unserved:
            assert outcome.schedule.block(link).length == demand
    # conservation: every negotiation is served or reported, never both
    for link in outcome.unserved:
        assert link not in outcome.schedule


@given(random_instances())
@settings(max_examples=60, deadline=None)
def test_distributed_generous_frame_serves_everything(instance):
    """With a frame big enough for the serial schedule, the handshake can
    never strand demand."""
    topology, demands = instance
    total = sum(demands.values())
    scheduler = DistributedScheduler(topology, frame_slots=max(total, 1),
                                     max_cycles=64)
    outcome = scheduler.run(demands)
    assert outcome.fully_served
    assert outcome.messages == 3 * len(demands)


@given(random_instances(), st.integers(0, 8), st.integers(4, 16))
@settings(max_examples=60, deadline=None)
def test_best_effort_packing_invariants(instance, region_start, extra):
    """Best-effort packing never violates conflicts, never exceeds asks,
    and stays inside its region."""
    topology, demands = instance
    conflicts = conflict_graph(topology, hops=2)
    frame_slots = region_start + extra
    schedule = pack_best_effort(conflicts, demands, region_start,
                                frame_slots)
    schedule.validate(conflicts)
    for link, block in schedule.items():
        assert block.start >= region_start
        assert block.end <= frame_slots
        assert block.length <= demands[link]


@given(random_instances())
@settings(max_examples=40, deadline=None)
def test_two_class_regions_never_overlap(instance):
    topology, demands = instance
    conflicts = conflict_graph(topology, hops=2)
    # split demands: alternate links between classes
    items = sorted(demands.items())
    guaranteed = dict(items[::2])
    best_effort = dict(items[1::2])
    total = sum(demands.values())
    try:
        result = schedule_two_classes(conflicts, guaranteed, best_effort,
                                      frame_slots=max(total, 1))
    except InfeasibleScheduleError:
        return
    for ____, block in result.guaranteed.items():
        assert block.end <= result.guaranteed_region
    for ____, block in result.best_effort.items():
        assert block.start >= result.guaranteed_region
    result.guaranteed.validate(conflicts)
    result.best_effort.validate(conflicts)
