"""The sqlite-WAL ledger backend and backend parity with JSONL.

Both backends sit behind the same :class:`RunLedger` facade and must
agree record-for-record: same entries, same completed keys, same query
results.  The sqlite-specific hardening -- contended-append retries and
damaged-database quarantine -- is exercised directly.
"""

import sqlite3

import pytest

from repro import obs
from repro.errors import ConfigurationError
from repro.runtime.chaos import ChaosPolicy
from repro.runtime.ledger import (
    RunLedger,
    infer_backend,
    parse_query,
    summarize_ledger,
)
from repro.runtime.tasks import TaskResult, make_task, task_key


def result_for(x, outcome="ok", attempts=1, wall_s=0.5, error=None):
    task = make_task("repro.runtime.chaos:chaos_probe", {"x": x})
    return TaskResult(task=task, key=task_key(task), outcome=outcome,
                      value={"x": x}, wall_s=wall_s, attempts=attempts,
                      worker="serial", error=error)


def fill(ledger):
    ledger.record(result_for(0, wall_s=0.1))
    ledger.record(result_for(1, outcome="failed", attempts=3,
                             wall_s=2.0, error="RuntimeError: kaboom"))
    ledger.record(result_for(2, outcome="cached", wall_s=0.0))
    ledger.record(result_for(3, attempts=2, wall_s=5.0))


def test_infer_backend():
    assert infer_backend("ledger.jsonl") == "jsonl"
    assert infer_backend("anything.log") == "jsonl"
    assert infer_backend("ledger.sqlite") == "sqlite"
    assert infer_backend("ledger.sqlite3") == "sqlite"
    assert infer_backend("runs.db") == "sqlite"
    assert infer_backend("ledger.jsonl", backend="sqlite") == "sqlite"
    with pytest.raises(ConfigurationError):
        infer_backend("x", backend="postgres")


def test_backends_agree_on_entries_keys_and_queries(tmp_path):
    jsonl = RunLedger(tmp_path / "ledger.jsonl")
    sqlite_ledger = RunLedger(tmp_path / "ledger.sqlite")
    fill(jsonl)
    fill(sqlite_ledger)

    def strip_ts(rows):
        return [{k: v for k, v in row.items() if k != "ts"}
                for row in rows]

    assert strip_ts(jsonl.entries()) == strip_ts(sqlite_ledger.entries())
    assert jsonl.completed_keys() == sqlite_ledger.completed_keys()
    for query in ({"outcome": "failed"}, {"attempts": 2}, {}):
        for order, limit in ((None, None), ("-wall_s", 2),
                             ("attempts", None), ("-error", 3)):
            left = jsonl.query(query, order=order, limit=limit)
            right = sqlite_ledger.query(query, order=order, limit=limit)
            assert strip_ts(left) == strip_ts(right), \
                (query, order, limit)
    sqlite_ledger.close()


def test_sqlite_persists_across_reopen(tmp_path):
    path = tmp_path / "ledger.sqlite"
    ledger = RunLedger(path)
    fill(ledger)
    ledger.close()
    reopened = RunLedger(path)
    assert len(reopened.entries()) == 4
    assert len(reopened.completed_keys()) == 3
    reopened.close()


def test_sqlite_torn_append_retries_and_lands(tmp_path):
    ledger = RunLedger(tmp_path / "ledger.sqlite")
    chaos = ChaosPolicy(seed=0, torn_ledger_rate=1.0)
    with obs.use_registry(obs.MetricsRegistry()) as registry:
        ledger.record(result_for(0), chaos=chaos)
        counters = registry.snapshot()["counters"]
    assert counters["runtime.ledger.write_retries"] == 1
    assert counters["runtime.chaos.torn_ledger_writes"] == 1
    assert len(ledger.entries()) == 1  # exactly once, not zero or twice
    ledger.close()


def test_damaged_database_is_quarantined_not_fatal(tmp_path):
    path = tmp_path / "ledger.sqlite"
    path.write_bytes(b"this is not a sqlite database at all.........")
    with obs.use_registry(obs.MetricsRegistry()) as registry:
        ledger = RunLedger(path)
        ledger.record(result_for(0))
        counters = registry.snapshot()["counters"]
    assert counters["runtime.ledger.db_recovered"] == 1
    assert len(ledger.entries()) == 1
    corpses = list(tmp_path.glob("ledger.sqlite.corrupt*"))
    assert len(corpses) == 1
    assert corpses[0].read_bytes().startswith(b"this is not")
    ledger.close()
    # The recreated file is a real database now.
    connection = sqlite3.connect(path)
    count = connection.execute(
        "SELECT COUNT(*) FROM task_runs").fetchone()[0]
    connection.close()
    assert count == 1


@pytest.mark.parametrize("name", ["ledger.jsonl", "ledger.sqlite"])
def test_orphans_and_heartbeats(tmp_path, name):
    ledger = RunLedger(tmp_path / name)
    alive_task = make_task("repro.runtime.chaos:chaos_probe", {"x": 1})
    dead_task = make_task("repro.runtime.chaos:chaos_probe", {"x": 2})
    done_task = make_task("repro.runtime.chaos:chaos_probe", {"x": 3})
    ledger.start(alive_task, "key-alive")
    ledger.start(dead_task, "key-dead")
    ledger.start(done_task, "key-done")
    ledger.heartbeat(["key-alive"])
    ledger.record(TaskResult(task=done_task, key="key-done",
                             outcome="ok", value=1))
    orphans = ledger.orphans()
    assert sorted(o["key"] for o in orphans) == ["key-alive", "key-dead"]
    # With a staleness window, the heartbeat keeps key-alive off the list.
    fresh = ledger.orphans(stale_s=3600.0)
    assert [o["key"] for o in fresh] == ["key-dead"] or fresh == []
    ledger.close()


def test_summary_counts_retries_orphans_and_quarantine(tmp_path):
    ledger = RunLedger(tmp_path / "ledger.sqlite")
    fill(ledger)
    ledger.start(make_task("repro.runtime.chaos:chaos_probe", {"x": 9}),
                 "key-orphan")
    ledger.close()
    quarantine = tmp_path / "quarantine"
    quarantine.mkdir()
    (quarantine / "deadbeef.json").write_text("torn")
    summary = summarize_ledger(tmp_path / "ledger.sqlite",
                               quarantine_dir=quarantine)
    assert summary.total == 4
    assert summary.retried == 2
    assert summary.orphaned == 1
    assert summary.quarantined == 1
    assert summary.by_outcome["ok"] == 2


def test_parse_query():
    where, order, limit = parse_query(
        "outcome=failed,attempts=2,order=-wall_s,limit=5")
    assert where == {"outcome": "failed", "attempts": 2}
    assert order == "-wall_s"
    assert limit == 5
    assert parse_query("") == ({}, None, None)
    with pytest.raises(ConfigurationError):
        parse_query("just-a-word")
    with pytest.raises(ConfigurationError):
        parse_query("limit=soon")


def test_query_rejects_unknown_fields(tmp_path):
    for name in ("ledger.jsonl", "ledger.sqlite"):
        ledger = RunLedger(tmp_path / name)
        fill(ledger)
        with pytest.raises(ConfigurationError):
            ledger.query({"nonsense": 1})
        with pytest.raises(ConfigurationError):
            ledger.query({}, order="nonsense")
        ledger.close()
