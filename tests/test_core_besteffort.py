"""Two-class (guaranteed + best effort) scheduling."""

import pytest

from repro.core.besteffort import (
    pack_best_effort,
    schedule_two_classes,
)
from repro.core.conflict import conflict_graph
from repro.core.ilp import DelayConstraint
from repro.errors import ConfigurationError, InfeasibleScheduleError
from repro.net.topology import chain_topology, star_topology


class TestPackBestEffort:
    def test_fills_leftover_region_only(self, chain5):
        conflicts = conflict_graph(chain5, hops=2)
        schedule = pack_best_effort(conflicts, {(0, 1): 2, (2, 3): 2},
                                    region_start=4, frame_slots=10)
        for ____, block in schedule.items():
            assert block.start >= 4
            assert block.end <= 10
        schedule.validate(conflicts)

    def test_elastic_partial_grant(self):
        topo = star_topology(2)
        conflicts = conflict_graph(topo, hops=2)
        # two conflicting links asking 4 each into a 6-slot region: the
        # first gets 4, the second the remaining 2
        schedule = pack_best_effort(conflicts, {(0, 1): 4, (0, 2): 4},
                                    region_start=0, frame_slots=6)
        lengths = sorted(b.length for ____, b in schedule.items())
        assert lengths == [2, 4]

    def test_zero_grant_when_region_full(self):
        topo = star_topology(2)
        conflicts = conflict_graph(topo, hops=2)
        schedule = pack_best_effort(conflicts, {(0, 1): 3, (0, 2): 3},
                                    region_start=0, frame_slots=3)
        # only the first link fits
        assert len(schedule) == 1

    def test_avoids_occupied_guaranteed_blocks(self, chain5):
        from repro.core.schedule import Schedule, SlotBlock
        conflicts = conflict_graph(chain5, hops=2)
        occupied = Schedule(10, {(1, 2): SlotBlock(0, 4)})
        schedule = pack_best_effort(conflicts, {(0, 1): 2},
                                    region_start=2, frame_slots=10,
                                    occupied=occupied)
        block = schedule.block((0, 1))
        # (0,1) conflicts with (1,2) whose block runs to slot 4
        assert block.start >= 4

    def test_spatial_reuse_in_best_effort(self, chain8):
        conflicts = conflict_graph(chain8, hops=2)
        schedule = pack_best_effort(conflicts, {(0, 1): 3, (5, 6): 3},
                                    region_start=0, frame_slots=3)
        assert schedule.block((0, 1)).length == 3
        assert schedule.block((5, 6)).length == 3

    def test_invalid_region(self, chain5):
        conflicts = conflict_graph(chain5, hops=2)
        with pytest.raises(ConfigurationError):
            pack_best_effort(conflicts, {}, region_start=11, frame_slots=10)

    def test_unknown_link_rejected(self, chain5):
        conflicts = conflict_graph(chain5, hops=2, links=[(0, 1)])
        with pytest.raises(ConfigurationError, match="missing"):
            pack_best_effort(conflicts, {(1, 2): 1}, 0, 10)


class TestTwoClasses:
    def test_guaranteed_sized_minimally_and_be_fills_rest(self, chain5):
        conflicts = conflict_graph(chain5, hops=2)
        guaranteed = {(0, 1): 1, (1, 2): 1, (2, 3): 1}
        best_effort = {(3, 4): 8, (4, 3): 8}
        result = schedule_two_classes(conflicts, guaranteed, best_effort,
                                      frame_slots=12)
        assert result.guaranteed_region == 3
        assert result.best_effort_region == 9
        result.guaranteed.validate(conflicts)
        result.best_effort.validate(conflicts)
        for ____, block in result.best_effort.items():
            assert block.start >= result.guaranteed_region
        # the combined view lists every reservation of both classes
        assert len(list(result.items())) == len(result.guaranteed) + \
            len(result.best_effort)

    def test_grant_fraction(self, chain8):
        conflicts = conflict_graph(chain8, hops=2)
        guaranteed = {(0, 1): 2}
        best_effort = {(4, 5): 10}
        result = schedule_two_classes(conflicts, guaranteed, best_effort,
                                      frame_slots=8)
        # region 2 guaranteed, 6 left; asked 10, granted 6
        assert result.best_effort_grants[(4, 5)] == 6
        assert result.grant_fraction(best_effort) == pytest.approx(0.6)

    def test_best_effort_never_blocks_guaranteed(self):
        topo = star_topology(3)
        conflicts = conflict_graph(topo, hops=2)
        guaranteed = {(0, 1): 2, (0, 2): 2}
        best_effort = {(0, 3): 100}
        result = schedule_two_classes(conflicts, guaranteed, best_effort,
                                      frame_slots=6)
        assert result.guaranteed_region == 4
        assert result.best_effort_grants.get((0, 3), 0) == 2

    def test_guaranteed_infeasibility_raises(self):
        topo = star_topology(2)
        conflicts = conflict_graph(topo, hops=2)
        with pytest.raises(InfeasibleScheduleError):
            schedule_two_classes(conflicts, {(0, 1): 5, (0, 2): 5}, {},
                                 frame_slots=8)

    def test_delay_constraints_respected_in_guaranteed(self, chain5):
        from repro.core.delay import path_delay_slots
        conflicts = conflict_graph(chain5, hops=2)
        route = ((0, 1), (1, 2), (2, 3), (3, 4))
        guaranteed = {l: 1 for l in route}
        result = schedule_two_classes(
            conflicts, guaranteed, {}, frame_slots=16,
            delay_constraints=[DelayConstraint("f", route, 16)])
        assert path_delay_slots(result.guaranteed, route) <= 16

    def test_link_in_both_classes_gets_two_reservations(self, chain5):
        # a link carrying VoIP *and* bulk holds one block per region
        conflicts = conflict_graph(chain5, hops=2)
        result = schedule_two_classes(conflicts, {(0, 1): 1}, {(0, 1): 3},
                                      frame_slots=8)
        pairs = list(result.items())
        links = [link for link, ____ in pairs]
        assert links.count((0, 1)) == 2
        g_block = result.guaranteed.block((0, 1))
        be_block = result.best_effort.block((0, 1))
        assert not g_block.overlaps(be_block)
        assert g_block.end <= result.guaranteed_region <= be_block.start

    def test_empty_best_effort(self, chain5):
        conflicts = conflict_graph(chain5, hops=2)
        result = schedule_two_classes(conflicts, {(0, 1): 1}, {},
                                      frame_slots=8)
        assert len(result.best_effort) == 0
        assert result.grant_fraction({}) == 1.0
