"""Topology model and generators."""

import networkx as nx
import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.net.topology import (
    MeshTopology,
    binary_tree_topology,
    chain_topology,
    from_edges,
    grid_topology,
    random_disk_topology,
    star_topology,
    surviving_topology,
)


class TestMeshTopology:
    def test_links_are_both_directions_of_each_edge(self, chain5):
        assert (0, 1) in chain5.links
        assert (1, 0) in chain5.links
        assert chain5.num_links() == 2 * chain5.graph.number_of_edges()

    def test_links_sorted_canonically(self, chain5):
        assert chain5.links == sorted(chain5.links)

    def test_link_index_is_stable(self, chain5):
        for i, link in enumerate(chain5.links):
            assert chain5.link_index(link) == i

    def test_link_index_unknown_link_raises(self, chain5):
        with pytest.raises(ConfigurationError):
            chain5.link_index((0, 4))

    def test_has_link(self, chain5):
        assert chain5.has_link((2, 3))
        assert not chain5.has_link((0, 3))

    def test_neighbors_sorted(self, grid33):
        assert grid33.neighbors(4) == [1, 3, 5, 7]

    def test_hop_distance(self, grid33):
        assert grid33.hop_distance(0, 8) == 4
        assert grid33.hop_distance(0, 0) == 0

    def test_distance_requires_positions(self):
        topo = from_edges([(0, 1)])
        with pytest.raises(ConfigurationError):
            topo.distance(0, 1)

    def test_distance_euclidean(self, chain5):
        assert chain5.distance(0, 3) == pytest.approx(300.0)

    def test_disconnected_rejected(self):
        graph = nx.Graph()
        graph.add_edge(0, 1)
        graph.add_edge(2, 3)
        with pytest.raises(ConfigurationError, match="connected"):
            MeshTopology(graph)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            MeshTopology(nx.Graph())

    def test_non_integer_nodes_rejected(self):
        graph = nx.Graph()
        graph.add_edge("a", "b")
        with pytest.raises(ConfigurationError, match="integer"):
            MeshTopology(graph)


class TestChain:
    def test_structure(self):
        topo = chain_topology(4)
        assert topo.num_nodes() == 4
        assert topo.num_links() == 6
        assert topo.neighbors(1) == [0, 2]

    def test_single_node(self):
        topo = chain_topology(1)
        assert topo.num_nodes() == 1
        assert topo.num_links() == 0

    def test_invalid_size(self):
        with pytest.raises(ConfigurationError):
            chain_topology(0)

    def test_positions_spaced(self):
        topo = chain_topology(3, spacing=50.0)
        assert topo.positions[2] == (100.0, 0.0)


class TestGrid:
    def test_structure(self):
        topo = grid_topology(2, 3)
        assert topo.num_nodes() == 6
        # 2*3 grid has 7 undirected edges
        assert topo.num_links() == 14

    def test_node_ids_row_major(self):
        topo = grid_topology(3, 3)
        # node 4 is the center; corner 0 connects right (1) and down (3)
        assert topo.neighbors(0) == [1, 3]

    def test_invalid_dims(self):
        with pytest.raises(ConfigurationError):
            grid_topology(0, 3)


class TestStar:
    def test_all_leaves_connect_to_hub(self):
        topo = star_topology(5)
        assert topo.num_nodes() == 6
        for leaf in range(1, 6):
            assert topo.neighbors(leaf) == [0]

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            star_topology(0)


class TestBinaryTree:
    def test_depth_zero_is_single_node(self):
        assert binary_tree_topology(0).num_nodes() == 1

    def test_complete_tree_node_count(self):
        assert binary_tree_topology(3).num_nodes() == 15

    def test_invalid_depth(self):
        with pytest.raises(ConfigurationError):
            binary_tree_topology(-1)


class TestRandomDisk:
    def test_connected_and_within_range(self):
        rng = np.random.default_rng(5)
        topo = random_disk_topology(12, radio_range=400.0, area=800.0,
                                    rng=rng)
        assert topo.num_nodes() == 12
        assert nx.is_connected(topo.graph)
        for u, v in topo.graph.edges:
            assert topo.distance(u, v) <= 400.0 + 1e-9

    def test_non_edges_out_of_range(self):
        rng = np.random.default_rng(5)
        topo = random_disk_topology(10, radio_range=400.0, area=800.0,
                                    rng=rng)
        for u in topo.nodes:
            for v in topo.nodes:
                if u < v and not topo.graph.has_edge(u, v):
                    assert topo.distance(u, v) > 400.0

    def test_reproducible_given_rng_seed(self):
        topo1 = random_disk_topology(8, 400.0, 700.0,
                                     np.random.default_rng(3))
        topo2 = random_disk_topology(8, 400.0, 700.0,
                                     np.random.default_rng(3))
        assert set(topo1.graph.edges) == set(topo2.graph.edges)

    def test_impossible_parameters_raise(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigurationError, match="connected"):
            random_disk_topology(20, radio_range=10.0, area=10_000.0,
                                 rng=rng, max_tries=5)

    def test_invalid_parameters(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigurationError):
            random_disk_topology(0, 100.0, 100.0, rng)
        with pytest.raises(ConfigurationError):
            random_disk_topology(5, -1.0, 100.0, rng)

    def test_seed_kwarg_reproducible(self):
        topo1 = random_disk_topology(8, 400.0, 700.0, seed=11)
        topo2 = random_disk_topology(8, 400.0, 700.0, seed=11)
        assert set(topo1.graph.edges) == set(topo2.graph.edges)
        assert topo1.positions == topo2.positions

    def test_rng_and_seed_agree(self):
        """seed=N is exactly rng=default_rng(N): same derived placements."""
        via_seed = random_disk_topology(8, 400.0, 700.0, seed=7)
        via_rng = random_disk_topology(8, 400.0, 700.0,
                                       rng=np.random.default_rng(7))
        assert via_seed.positions == via_rng.positions

    def test_needs_rng_or_seed(self):
        with pytest.raises(ConfigurationError, match="rng or a seed"):
            random_disk_topology(5, 100.0, 100.0)

    def test_failure_message_includes_seed(self):
        with pytest.raises(ConfigurationError, match="seed=99"):
            random_disk_topology(20, radio_range=10.0, area=10_000.0,
                                 seed=99, max_tries=5)


class TestSurvivingTopology:
    def test_identity_with_no_faults(self, chain5):
        survivor, unreachable = surviving_topology(chain5)
        assert survivor.nodes == chain5.nodes
        assert survivor.links == chain5.links
        assert unreachable == frozenset()

    def test_dead_node_partitions_chain(self, chain5):
        survivor, unreachable = surviving_topology(chain5, dead_nodes=[2],
                                                   anchor=0)
        assert survivor.nodes == [0, 1]
        assert unreachable == frozenset({2, 3, 4})

    def test_dead_edge_is_undirected(self, chain5):
        for edge in [(1, 2), (2, 1)]:
            survivor, unreachable = surviving_topology(
                chain5, dead_edges=[edge], anchor=0)
            assert survivor.nodes == [0, 1]
            assert unreachable == frozenset({2, 3, 4})

    def test_redundant_edge_keeps_everyone(self):
        grid = grid_topology(2, 2)
        survivor, unreachable = surviving_topology(grid, dead_edges=[(0, 1)])
        assert survivor.nodes == grid.nodes
        assert unreachable == frozenset()
        assert not survivor.has_link((0, 1))

    def test_positions_carried_over(self, chain5):
        survivor, _ = surviving_topology(chain5, dead_nodes=[4])
        assert survivor.positions[3] == chain5.positions[3]

    def test_dead_anchor_raises(self, chain5):
        with pytest.raises(ConfigurationError, match="anchor"):
            surviving_topology(chain5, dead_nodes=[0], anchor=0)

    def test_unknown_dead_entries_ignored(self, chain5):
        survivor, unreachable = surviving_topology(
            chain5, dead_nodes=[99], dead_edges=[(7, 8)])
        assert survivor.nodes == chain5.nodes
        assert unreachable == frozenset()

    def test_base_topology_unmodified(self, chain5):
        before = list(chain5.graph.edges)
        surviving_topology(chain5, dead_nodes=[2], dead_edges=[(0, 1)])
        assert list(chain5.graph.edges) == before


def test_from_edges():
    topo = from_edges([(0, 1), (1, 2)], name="tiny")
    assert topo.name == "tiny"
    assert topo.num_links() == 4
