"""Run ledger: append, read back, summarize."""

from repro import obs
from repro.runtime.ledger import (
    RunLedger,
    format_ledger_summary,
    summarize_ledger,
)
from repro.runtime.tasks import TaskResult, make_task


def _result(target="E9", outcome="ok", wall_s=1.0, error=None, seed=None):
    task = make_task(target, seed=seed)
    return TaskResult(task=task, key=f"k-{target}-{outcome}",
                      outcome=outcome, wall_s=wall_s, error=error,
                      attempts=1, worker="serial")


def test_round_trip(tmp_path):
    ledger = RunLedger(tmp_path / "ledger.jsonl")
    ledger.record(_result("E9", wall_s=0.5, seed=3))
    ledger.record(_result("E4", outcome="failed", error="RuntimeError: x"))
    entries = ledger.entries()
    assert len(entries) == 2
    assert entries[0]["target"] == "E9"
    assert entries[0]["seed"] == 3
    assert entries[0]["outcome"] == "ok"
    assert entries[0]["wall_s"] == 0.5
    assert entries[1]["error"] == "RuntimeError: x"
    assert all("ts" in e and "key" in e and "attempts" in e
               for e in entries)


def test_missing_file_reads_empty(tmp_path):
    assert RunLedger(tmp_path / "nope.jsonl").entries() == []


def test_corrupt_lines_skipped(tmp_path):
    path = tmp_path / "ledger.jsonl"
    ledger = RunLedger(path)
    ledger.record(_result("E9"))
    with open(path, "a", encoding="utf-8") as handle:
        handle.write("{torn line\n")
    ledger.record(_result("E4"))
    assert [e["target"] for e in ledger.entries()] == ["E9", "E4"]
    assert ledger.corrupt_lines == 1


def test_torn_final_line_does_not_fuse_with_next_record(tmp_path):
    path = tmp_path / "ledger.jsonl"
    ledger = RunLedger(path)
    ledger.record(_result("E9"))
    # A process killed mid-write leaves a partial line, no newline.
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"target": "E4", "outcome": "ok"')
    ledger.record(_result("E2"))
    # Exactly one record is lost -- the torn one -- and it is counted.
    assert [e["target"] for e in ledger.entries()] == ["E9", "E2"]
    assert ledger.corrupt_lines == 1


def test_corrupt_lines_surface_in_summary_and_metrics(tmp_path):
    path = tmp_path / "ledger.jsonl"
    ledger = RunLedger(path)
    ledger.record(_result("E9"))
    with open(path, "a", encoding="utf-8") as handle:
        handle.write("oops\n{still not json\n")
    with obs.use_registry(obs.MetricsRegistry()) as registry:
        summary = summarize_ledger(path)
    assert summary.total == 1
    assert summary.corrupt_lines == 2
    assert "warning: 2 corrupt ledger line(s) skipped" in \
        format_ledger_summary(summary)
    counters = registry.snapshot()["counters"]
    assert counters["runtime.ledger.corrupt_lines"] == 2


def test_completed_keys_only_successes(tmp_path):
    ledger = RunLedger(tmp_path / "ledger.jsonl")
    ledger.record(_result("E9", outcome="ok"))
    ledger.record(_result("E4", outcome="failed"))
    ledger.record(_result("E2", outcome="cached"))
    keys = ledger.completed_keys()
    assert keys == {"k-E9-ok", "k-E2-cached"}


def test_summary_counts_slowest_and_failures(tmp_path):
    path = tmp_path / "ledger.jsonl"
    ledger = RunLedger(path)
    for wall in (0.1, 3.0, 1.0):
        ledger.record(_result("E9", wall_s=wall))
    ledger.record(_result("E4", outcome="failed", wall_s=0.2,
                          error="RuntimeError: x"))
    ledger.record(_result("E2", outcome="timeout", wall_s=9.0,
                          error="timed out after 9s"))

    summary = summarize_ledger(path, top=2)
    assert summary.total == 5
    assert summary.by_outcome["ok"] == 3
    assert summary.by_outcome["failed"] == 1
    assert summary.by_outcome["timeout"] == 1
    assert summary.total_wall_s == sum((0.1, 3.0, 1.0, 0.2, 9.0))
    assert [wall for _, wall in summary.slowest] == [9.0, 3.0]
    assert len(summary.failures) == 2

    text = format_ledger_summary(summary)
    assert "tasks: 5" in text
    assert "slowest" in text
    assert "RuntimeError: x" in text
