"""End-to-end integration: the scenario runners that the experiments use.

These run real (short) packet-level simulations of both stacks and assert
the behavioural claims the paper makes, not just plumbing.
"""

import math

import pytest

from repro.analysis.scenarios import (
    admit_flows,
    delay_constraints_for,
    make_voip_flows,
    run_dcf_scenario,
    run_tdma_scenario,
    schedule_for_flows,
)
from repro.errors import ConfigurationError
from repro.mesh16.frame import default_frame_config
from repro.net.flows import Flow, FlowSet
from repro.net.routing import route_all
from repro.net.topology import chain_topology, grid_topology
from repro.overlay.sync import SyncConfig
from repro.sim.random import RngRegistry
from repro.traffic.voip import G729


@pytest.fixture(scope="module")
def small_scenario():
    topology = chain_topology(4)
    frame = default_frame_config()
    rngs = RngRegistry(seed=77)
    flows = route_all(topology, FlowSet([
        Flow("up", 3, 0, rate_bps=G729.wire_rate_bps, delay_budget_s=0.05),
        Flow("down", 0, 3, rate_bps=G729.wire_rate_bps, delay_budget_s=0.05),
    ]))
    schedule = schedule_for_flows(topology, flows, frame, method="ilp")
    return topology, frame, flows, schedule, rngs


class TestTdmaScenario:
    def test_zero_loss_and_bounded_delay(self, small_scenario):
        topology, frame, flows, schedule, rngs = small_scenario
        result = run_tdma_scenario(topology, flows, frame, schedule,
                                   duration_s=2.0, rngs=rngs.spawn("a"),
                                   codec=G729)
        for qos in result.qos.values():
            assert qos.loss_fraction == 0.0
            # hard bound: worst case is one frame queueing + budgeted
            # relaying delay
            assert qos.max_delay_s <= 0.05 + frame.frame_duration_s

    def test_no_slot_collisions_with_default_sync(self, small_scenario):
        topology, frame, flows, schedule, rngs = small_scenario
        result = run_tdma_scenario(topology, flows, frame, schedule,
                                   duration_s=2.0, rngs=rngs.spawn("b"),
                                   codec=G729, drift_ppm=20.0)
        assert result.extras["slot_collisions"] == 0
        assert result.extras["max_sync_error_s"] < frame.guard_s

    def test_sync_off_error_grows_linearly(self, small_scenario):
        topology, frame, flows, schedule, rngs = small_scenario
        result = run_tdma_scenario(
            topology, flows, frame, schedule, duration_s=2.0,
            rngs=rngs.spawn("c"), codec=G729, drift_ppm=20.0,
            sync_config=SyncConfig(enabled=False))
        # at least one node drifts towards 20 ppm * 2 s = 40 us
        assert result.extras["max_sync_error_s"] > 5e-6

    def test_deterministic_given_seed(self, small_scenario):
        topology, frame, flows, schedule, ____ = small_scenario

        def run(seed):
            result = run_tdma_scenario(topology, flows, frame, schedule,
                                       duration_s=1.0,
                                       rngs=RngRegistry(seed=seed),
                                       codec=G729)
            return {name: (q.sent, q.received, q.mean_delay_s)
                    for name, q in result.qos.items()}

        assert run(5) == run(5)
        assert run(5) != run(6)

    def test_schedule_frame_mismatch_rejected(self, small_scenario):
        topology, frame, flows, ____, rngs = small_scenario
        from repro.core.schedule import Schedule
        bad = Schedule(8)
        with pytest.raises(ConfigurationError):
            run_tdma_scenario(topology, flows, frame, bad, 1.0,
                              rngs.spawn("x"))


class TestDcfScenario:
    def test_light_load_clean(self, small_scenario):
        topology, ____, flows, ____, rngs = small_scenario
        result = run_dcf_scenario(topology, flows, duration_s=2.0,
                                  rngs=rngs.spawn("d"), codec=G729)
        for qos in result.qos.values():
            assert qos.loss_fraction < 0.01
            assert qos.mean_delay_s < 0.05

    def test_overload_degrades_dcf_but_not_tdma(self):
        topology = grid_topology(3, 3)
        frame = default_frame_config()
        rngs = RngRegistry(seed=42)
        flows = make_voip_flows(topology, 10, rngs, codec=G729, gateway=0,
                                delay_budget_s=0.05)
        admitted, schedule = admit_flows(topology, flows, frame)
        assert 0 < len(admitted) < 10

        tdma = run_tdma_scenario(topology, admitted, frame, schedule,
                                 duration_s=2.0, rngs=rngs.spawn("t"),
                                 codec=G729)
        dcf = run_dcf_scenario(topology, flows, duration_s=2.0,
                               rngs=rngs.spawn("d"), codec=G729)
        assert tdma.total_loss_fraction() == 0.0
        assert dcf.total_loss_fraction() > 0.05
        worst_tdma = max(q.p95_delay_s for q in tdma.qos.values())
        assert worst_tdma <= 0.05 + frame.frame_duration_s


class TestHelpers:
    def test_make_voip_flows_respects_gateway(self, rngs):
        topology = grid_topology(3, 3)
        flows = make_voip_flows(topology, 6, rngs, gateway=4)
        for flow in flows:
            assert 4 in (flow.src, flow.dst)
            assert flow.is_routed

    def test_make_voip_flows_min_hops(self, rngs):
        topology = grid_topology(3, 3)
        flows = make_voip_flows(topology, 5, rngs, min_hops=2)
        assert all(f.hops >= 2 for f in flows)

    def test_schedule_for_flows_methods_agree_on_feasibility(self, rngs):
        topology = chain_topology(5)
        frame = default_frame_config()
        flows = route_all(topology, FlowSet([
            Flow("f", 4, 0, rate_bps=G729.wire_rate_bps,
                 delay_budget_s=0.1)]))
        from repro.core.conflict import conflict_graph
        conflicts = conflict_graph(topology, hops=2)
        for method in ("ilp", "greedy", "tree"):
            schedule = schedule_for_flows(topology, flows, frame,
                                          method=method)
            schedule.validate(conflicts)

    def test_schedule_for_flows_unknown_method(self, rngs):
        topology = chain_topology(3)
        frame = default_frame_config()
        flows = route_all(topology, FlowSet([
            Flow("f", 0, 2, rate_bps=1000, delay_budget_s=0.1)]))
        with pytest.raises(ConfigurationError):
            schedule_for_flows(topology, flows, frame, method="magic")

    def test_delay_constraints_budgets_in_slots(self):
        frame = default_frame_config()
        flows = FlowSet([Flow("f", 0, 1, rate_bps=1000,
                              delay_budget_s=0.01).with_route([(0, 1)])])
        constraints = delay_constraints_for(flows, frame)
        assert constraints[0].budget_slots == 16  # 10 ms = one frame

    def test_admit_flows_prefix_property(self, rngs):
        # every admitted set must itself be schedulable and non-empty
        topology = grid_topology(3, 3)
        frame = default_frame_config()
        flows = make_voip_flows(topology, 8, rngs, codec=G729, gateway=0,
                                delay_budget_s=0.05)
        admitted, schedule = admit_flows(topology, flows, frame)
        assert len(admitted) >= 1
        assert schedule is not None
        from repro.core.conflict import conflict_graph
        schedule.validate(conflict_graph(topology, hops=2))
