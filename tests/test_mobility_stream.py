"""Unit tests for repro.mobility.stream: geometry -> topology deltas."""

import pytest

from repro.errors import ConfigurationError
from repro.mobility.models import ConstantVelocityModel
from repro.mobility.stream import (
    RadioRangeModel,
    TopologyDelta,
    TopologyStream,
    gateway_selection,
)
from repro.mobility.trace import MobilityTrace
from repro.net.topology import random_disk_topology


def static_model(positions, horizon_s=5.0):
    return ConstantVelocityModel(positions,
                                 {n: (0.0, 0.0) for n in positions},
                                 horizon_s)


# -- radio model -----------------------------------------------------------


def test_radio_hysteresis_band_holds_previous_state():
    radio = RadioRangeModel(100.0, hysteresis=0.1)
    assert radio.initial(100.0) and not radio.initial(100.1)
    assert radio.next_state(True, 109.0)       # up survives to 110
    assert not radio.next_state(True, 111.0)
    assert not radio.next_state(False, 95.0)   # down forms only below 90
    assert radio.next_state(False, 89.0)


def test_radio_rejects_bad_parameters():
    with pytest.raises(ConfigurationError):
        RadioRangeModel(0.0)
    with pytest.raises(ConfigurationError):
        RadioRangeModel(100.0, hysteresis=1.0)
    with pytest.raises(ConfigurationError):
        RadioRangeModel(100.0, hysteresis=-0.1)


# -- deltas ----------------------------------------------------------------


def test_delta_normalises_links_and_validates():
    delta = TopologyDelta(1.0, "link_up", link=(5, 2))
    assert delta.link == (2, 5)
    with pytest.raises(ConfigurationError):
        TopologyDelta(1.0, "node_reboot", node=1)
    with pytest.raises(ConfigurationError):
        TopologyDelta(-1.0, "node_join", node=1)
    with pytest.raises(ConfigurationError):
        TopologyDelta(1.0, "node_join", link=(0, 1))
    with pytest.raises(ConfigurationError):
        TopologyDelta(1.0, "link_down", node=3)
    with pytest.raises(ConfigurationError):
        TopologyDelta(1.0, "link_up", link=(2, 2))


# -- streams ---------------------------------------------------------------


def test_static_stream_reproduces_the_disk_graph():
    topology = random_disk_topology(10, radio_range=150.0, area=300.0,
                                    seed=9)
    model = static_model({n: topology.position(n) for n in topology.nodes})
    stream = TopologyStream(model, 150.0, dt=1.0)
    expected = frozenset(tuple(sorted(l)) for l in topology.links)
    for _, nodes, edges in stream.snapshots():
        assert nodes == frozenset(topology.nodes)
        assert edges == expected
    assert stream.deltas() == []


def test_hysteresis_debounces_a_boundary_oscillator():
    # node 1 oscillates across the nominal range every second
    samples = [(float(t), 0, 0.0, 0.0) for t in range(7)]
    samples += [(float(t), 1, 95.0 if t % 2 == 0 else 105.0, 0.0)
                for t in range(7)]
    trace = MobilityTrace(samples)
    flappy = TopologyStream(trace, RadioRangeModel(100.0, hysteresis=0.0),
                            dt=1.0)
    assert len(flappy.deltas()) == 6   # breaks and reforms every step
    calm = TopologyStream(trace, RadioRangeModel(100.0, hysteresis=0.1),
                          dt=1.0)
    assert calm.deltas() == []


def test_leaving_node_emits_its_link_downs_too():
    samples = [(float(t), 0, 0.0, 0.0) for t in range(7)]
    samples += [(float(t), 1, 80.0, 0.0) for t in range(7)]
    samples += [(float(t), 2, 40.0, 30.0) for t in range(2, 5)]
    stream = TopologyStream(MobilityTrace(samples), 100.0, dt=1.0)
    deltas = stream.deltas()
    join = [d for d in deltas if d.kind == "node_join"]
    leave = [d for d in deltas if d.kind == "node_leave"]
    assert [(d.at_s, d.node) for d in join] == [(2.0, 2)]
    assert [(d.at_s, d.node) for d in leave] == [(5.0, 2)]
    # the full edge-set diff rides along at the same timestamps
    assert {(d.at_s, d.link) for d in deltas if d.kind == "link_up"} == \
        {(2.0, (0, 2)), (2.0, (1, 2))}
    assert {(d.at_s, d.link) for d in deltas if d.kind == "link_down"} == \
        {(5.0, (0, 2)), (5.0, (1, 2))}
    assert deltas == sorted(deltas, key=TopologyDelta.sort_key)


def test_sample_times_and_validation():
    model = static_model({0: (0.0, 0.0), 1: (50.0, 0.0)}, horizon_s=5.0)
    assert TopologyStream(model, 100.0, dt=2.0).sample_times() == \
        [0.0, 2.0, 4.0]
    assert TopologyStream(model, 100.0, dt=1.0,
                          horizon_s=2.0).sample_times() == [0.0, 1.0, 2.0]
    with pytest.raises(ConfigurationError):
        TopologyStream(model, 100.0, dt=0.0)
    with pytest.raises(ConfigurationError):
        TopologyStream(model, 100.0, dt=1.0, horizon_s=-1.0)


def test_union_topology_drops_nodes_outside_gateway_component():
    positions = {0: (0.0, 0.0), 1: (80.0, 0.0), 2: (1000.0, 1000.0),
                 3: (1080.0, 1000.0)}
    stream = TopologyStream(static_model(positions), 100.0, dt=1.0)
    topology, dropped = stream.union_topology(gateway=0)
    assert sorted(topology.graph.nodes) == [0, 1]
    assert dropped == frozenset({2, 3})
    assert topology.position(1) == (80.0, 0.0)
    with pytest.raises(ConfigurationError):
        stream.union_topology(gateway=99)


def test_isolated_gateway_is_a_configuration_error():
    positions = {0: (0.0, 0.0), 1: (1000.0, 0.0)}
    stream = TopologyStream(static_model(positions), 100.0, dt=1.0)
    with pytest.raises(ConfigurationError):
        stream.union_topology(gateway=0)


def test_fault_plan_lowers_the_t0_gap_into_dead_sets():
    # node 2 only joins at t=2: relative to the union base it is dead
    # at t=0, and its later arrival replays as node_up/link_up faults
    samples = [(float(t), 0, 0.0, 0.0) for t in range(7)]
    samples += [(float(t), 1, 80.0, 0.0) for t in range(7)]
    samples += [(float(t), 2, 40.0, 30.0) for t in range(2, 7)]
    stream = TopologyStream(MobilityTrace(samples), 100.0, dt=1.0)
    world = stream.fault_plan(gateway=0)
    assert sorted(world.topology.graph.nodes) == [0, 1, 2]
    assert world.dead_nodes == frozenset({2})
    assert world.dead_edges == frozenset({(0, 2), (1, 2)})
    kinds = [(e.at_s, e.kind) for e in world.plan]
    assert (2.0, "node_up") in kinds
    assert kinds.count((2.0, "link_up")) == 2
    assert all(e.kind in {"node_up", "node_down", "link_up", "link_down"}
               for e in world.plan)


def test_fault_plan_requires_the_gateway_in_every_snapshot():
    samples = [(float(t), 0, 0.0, 0.0) for t in range(2, 5)]
    samples += [(float(t), 1, 50.0, 0.0) for t in range(0, 5)]
    samples += [(float(t), 2, 90.0, 0.0) for t in range(0, 5)]
    stream = TopologyStream(MobilityTrace(samples), 100.0, dt=1.0)
    with pytest.raises(ConfigurationError):
        stream.fault_plan(gateway=0)


# -- gateway selection -----------------------------------------------------


def test_gateway_selection_picks_nearest_by_hops():
    edges = [(0, 1), (1, 2), (2, 3)]
    selection = gateway_selection([0, 1, 2, 3], edges, gateways=[0, 3])
    assert selection == {0: 0, 1: 0, 2: 3, 3: 3}


def test_gateway_selection_breaks_ties_by_smallest_id():
    selection = gateway_selection([0, 1, 2], [(0, 1), (1, 2)],
                                  gateways=[0, 2])
    assert selection[1] == 0


def test_gateway_selection_unreachable_is_none():
    selection = gateway_selection([0, 1, 5], [(0, 1)], gateways=[0, 9])
    assert selection == {0: 0, 1: 0, 5: None}
