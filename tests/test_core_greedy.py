"""Greedy slot-packing baselines."""

import pytest

from repro.core.conflict import conflict_graph
from repro.core.greedy import greedy_schedule
from repro.errors import ConfigurationError, InfeasibleScheduleError
from repro.net.topology import chain_topology, star_topology


class TestGreedyUnbounded:
    def test_conflict_free(self, grid33, rngs):
        conflicts = conflict_graph(grid33, hops=2)
        demands = {link: 1 for link in grid33.links[:10]}
        schedule = greedy_schedule(conflicts, demands)
        schedule.validate(conflicts)
        assert schedule.demands_met(demands)

    def test_makespan_equals_frame(self, chain5):
        conflicts = conflict_graph(chain5, hops=2)
        demands = {(0, 1): 1, (1, 2): 1, (2, 3): 1}
        schedule = greedy_schedule(conflicts, demands)
        assert schedule.frame_slots == schedule.makespan() == 3

    def test_spatial_reuse(self, chain8):
        conflicts = conflict_graph(chain8, hops=2)
        demands = {(0, 1): 1, (4, 5): 1}
        schedule = greedy_schedule(conflicts, demands)
        assert schedule.frame_slots == 1  # both fit in slot 0

    def test_star_packs_sequentially(self):
        topo = star_topology(3)
        conflicts = conflict_graph(topo, hops=2)
        demands = {(0, 1): 2, (0, 2): 1, (0, 3): 3}
        schedule = greedy_schedule(conflicts, demands)
        assert schedule.frame_slots == 6
        schedule.validate(conflicts)

    def test_first_fit_decreasing_processes_heavy_first(self):
        topo = star_topology(2)
        conflicts = conflict_graph(topo, hops=2)
        demands = {(0, 1): 1, (0, 2): 5}
        schedule = greedy_schedule(conflicts, demands, strategy="demand")
        assert schedule.block((0, 2)).start == 0
        assert schedule.block((0, 1)).start == 5

    def test_empty_demands(self, chain5):
        conflicts = conflict_graph(chain5, hops=2)
        schedule = greedy_schedule(conflicts, {})
        assert len(schedule) == 0
        assert schedule.frame_slots == 1


class TestGreedyBounded:
    def test_fits_when_room(self, chain5):
        conflicts = conflict_graph(chain5, hops=2)
        demands = {(0, 1): 1, (1, 2): 1}
        schedule = greedy_schedule(conflicts, demands, frame_slots=8)
        assert schedule.frame_slots == 8
        schedule.validate(conflicts)

    def test_raises_when_frame_too_small(self):
        topo = star_topology(3)
        conflicts = conflict_graph(topo, hops=2)
        demands = {(0, 1): 2, (0, 2): 2, (0, 3): 2}
        with pytest.raises(InfeasibleScheduleError):
            greedy_schedule(conflicts, demands, frame_slots=5)


class TestStrategies:
    def test_index_strategy_deterministic(self, grid33):
        conflicts = conflict_graph(grid33, hops=2)
        demands = {link: 1 for link in grid33.links[:8]}
        s1 = greedy_schedule(conflicts, demands, strategy="index")
        s2 = greedy_schedule(conflicts, demands, strategy="index")
        assert dict(s1.items()) == dict(s2.items())

    def test_random_strategy_requires_rng(self, chain5):
        conflicts = conflict_graph(chain5, hops=2)
        with pytest.raises(ConfigurationError, match="rng"):
            greedy_schedule(conflicts, {(0, 1): 1}, strategy="random")

    def test_random_strategy_reproducible_with_seed(self, chain5, rngs):
        conflicts = conflict_graph(chain5, hops=2)
        demands = {link: 1 for link in chain5.links}
        s1 = greedy_schedule(conflicts, demands, strategy="random",
                             rng=rngs.spawn("a").stream("x"))
        s2 = greedy_schedule(conflicts, demands, strategy="random",
                             rng=rngs.spawn("a").stream("x"))
        assert dict(s1.items()) == dict(s2.items())

    def test_unknown_strategy(self, chain5):
        conflicts = conflict_graph(chain5, hops=2)
        with pytest.raises(ConfigurationError, match="strategy"):
            greedy_schedule(conflicts, {(0, 1): 1}, strategy="magic")

    def test_demanded_link_missing_from_conflicts(self, chain5):
        conflicts = conflict_graph(chain5, hops=2, links=[(0, 1)])
        with pytest.raises(ConfigurationError, match="missing"):
            greedy_schedule(conflicts, {(0, 1): 1, (1, 2): 1})
