"""Sweeps: grid expansion, seeds, resume-through-cache."""

import pytest

from repro.errors import ConfigurationError
from repro.runtime.cache import ResultCache
from repro.runtime.sweep import Sweep, run_sweep
from repro.runtime.tasks import make_task

ADD = "tests.runtime_helpers:add"
ECHO = "tests.runtime_helpers:seed_echo"


def test_grid_expands_in_insertion_order_last_axis_fastest():
    sweep = Sweep(ADD, grid={"a": (1, 2), "b": (10, 20)})
    points = sweep.points()
    assert points == [{"a": 1, "b": 10}, {"a": 1, "b": 20},
                      {"a": 2, "b": 10}, {"a": 2, "b": 20}]
    assert len(sweep) == 4


def test_base_params_merged_into_every_point():
    sweep = Sweep(ADD, grid={"a": (1, 2)}, base={"b": 100})
    assert all(p["b"] == 100 for p in sweep.points())


def test_seeds_replicate_each_point():
    sweep = Sweep(ECHO, grid={"offset": (0.0, 1.0)}, seeds=(7, 8, 9))
    tasks = sweep.tasks()
    assert len(tasks) == 6 == len(sweep)
    assert [t.seed for t in tasks] == [7, 8, 9, 7, 8, 9]


def test_grid_base_collision_rejected():
    with pytest.raises(ConfigurationError):
        Sweep(ADD, grid={"a": (1,)}, base={"a": 2})


def test_empty_axis_rejected():
    with pytest.raises(ConfigurationError):
        Sweep(ADD, grid={"a": ()})


def test_run_sweep_returns_grid_order():
    sweep = Sweep(ADD, grid={"a": (1, 2, 3)}, base={"b": 1})
    results = run_sweep(sweep, jobs=1)
    assert [r.value for r in results] == [2, 3, 4]


def test_sweep_resumes_from_cache(tmp_path):
    cache = ResultCache(tmp_path, version="t", fingerprint="f")
    sweep = Sweep(ADD, grid={"a": (1, 2, 3)}, base={"b": 0})
    first = run_sweep(sweep, jobs=1, cache=cache)
    assert [r.outcome for r in first] == ["ok"] * 3

    # Simulate a partially lost run: drop one point, keep the others.
    cache.invalidate(make_task(ADD, {"a": 2, "b": 0}))
    second = run_sweep(sweep, jobs=1, cache=cache)
    assert [r.outcome for r in second] == ["cached", "ok", "cached"]
    assert [r.value for r in second] == [r.value for r in first]

    # Growing the grid only computes the new points.
    grown = Sweep(ADD, grid={"a": (1, 2, 3, 4)}, base={"b": 0})
    third = run_sweep(grown, jobs=1, cache=cache)
    assert [r.outcome for r in third] == ["cached"] * 3 + ["ok"]
