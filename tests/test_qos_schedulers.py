"""Intra-node scheduling disciplines."""

import pytest

from repro.errors import ConfigurationError
from repro.qos import ServiceClass, available_disciplines, make_scheduler
from repro.qos.schedulers import QueueView


def view(name, cls=ServiceClass.BE, weight=1, backlog_bits=10_000,
         backlog_packets=5, created=0.0, deadline=float("inf")):
    return QueueView(name, cls, weight, backlog_bits, backlog_packets,
                     created, deadline)


class TestFactory:
    def test_all_four_disciplines_available(self):
        assert available_disciplines() == ["drr", "edf", "strict", "wrr"]
        for name in available_disciplines():
            assert make_scheduler(name).name == name

    def test_unknown_discipline(self):
        with pytest.raises(ConfigurationError, match="unknown scheduling"):
            make_scheduler("fifo")

    def test_drr_params_forwarded(self):
        drr = make_scheduler("drr", quantum_bits=512)
        assert drr.quantum_bits == 512


class TestStrictPriority:
    def test_class_order(self):
        s = make_scheduler("strict")
        cands = [view("be0", ServiceClass.BE),
                 view("nrtps0", ServiceClass.NRTPS),
                 view("ugs0", ServiceClass.UGS),
                 view("rtps0", ServiceClass.RTPS)]
        assert s.pick(cands, 0.0) == "ugs0"
        assert s.pick(cands[:2], 0.0) == "nrtps0"

    def test_fifo_within_class(self):
        s = make_scheduler("strict")
        cands = [view("a", created=2.0), view("b", created=1.0)]
        assert s.pick(cands, 3.0) == "b"


class TestEdf:
    def test_earliest_deadline(self):
        s = make_scheduler("edf")
        cands = [view("late", deadline=0.5),
                 view("soon", deadline=0.1),
                 view("none", deadline=float("inf"))]
        assert s.pick(cands, 0.0) == "soon"

    def test_unbounded_flows_only_when_no_deadline_waits(self):
        s = make_scheduler("edf")
        assert s.pick([view("be0"), view("be1", created=-1.0)], 0.0) == "be1"

    def test_deadline_beats_class(self):
        # EDF is deadline-blind to class rank: a tighter rtPS deadline
        # outranks a looser UGS one
        s = make_scheduler("edf")
        cands = [view("ugs0", ServiceClass.UGS, deadline=0.5),
                 view("rtps0", ServiceClass.RTPS, deadline=0.2)]
        assert s.pick(cands, 0.0) == "rtps0"


class TestWrr:
    def test_weight_proportional_grants(self):
        s = make_scheduler("wrr")
        cands = [view("heavy", weight=3), view("light", weight=1)]
        picks = [s.pick(cands, 0.0) for _ in range(16)]
        assert picks.count("heavy") == 12
        assert picks.count("light") == 4

    def test_absent_flow_skipped(self):
        s = make_scheduler("wrr")
        both = [view("a", weight=2), view("b", weight=2)]
        s.pick(both, 0.0)
        only_b = [view("b", weight=2)]
        assert s.pick(only_b, 0.0) == "b"
        assert s.pick(only_b, 0.0) == "b"

    def test_reset_clears_round_state(self):
        s = make_scheduler("wrr")
        cands = [view("a", weight=1), view("b", weight=1)]
        first = s.pick(cands, 0.0)
        s.reset()
        assert s.pick(cands, 0.0) == first


class TestDrr:
    def test_bit_fair_shares(self):
        s = make_scheduler("drr", quantum_bits=1000, grant_bits=1000)
        cands = [view("a", weight=2, backlog_bits=10**9),
                 view("b", weight=1, backlog_bits=10**9)]
        picks = [s.pick(cands, 0.0) for _ in range(30)]
        assert picks.count("a") == 20
        assert picks.count("b") == 10

    def test_small_quantum_still_serves(self):
        # quantum below the grant size: deficits accumulate over rounds
        # and every backlogged flow is still eventually served
        s = make_scheduler("drr", quantum_bits=300, grant_bits=1000)
        cands = [view("a", weight=1, backlog_bits=10**9),
                 view("b", weight=1, backlog_bits=10**9)]
        picks = [s.pick(cands, 0.0) for _ in range(10)]
        assert set(picks) == {"a", "b"}

    def test_idle_flow_deficit_zeroed(self):
        s = make_scheduler("drr", quantum_bits=1000, grant_bits=1000)
        cands = [view("a", weight=1, backlog_bits=10**9),
                 view("b", weight=1, backlog_bits=10**9)]
        for _ in range(4):
            s.pick(cands, 0.0)
        # b leaves (queue empties): its deficit must not accumulate
        for _ in range(6):
            s.pick([view("a", weight=1, backlog_bits=10**9)], 0.0)
        assert s.deficit_of("b") == 0.0

    def test_partial_grant_costs_backlog_only(self):
        s = make_scheduler("drr", quantum_bits=1000, grant_bits=1000)
        picked = s.pick([view("a", weight=1, backlog_bits=400)], 0.0)
        assert picked == "a"
        assert s.deficit_of("a") == 600.0

    def test_invalid_quantum(self):
        with pytest.raises(ConfigurationError, match="quantum"):
            make_scheduler("drr", quantum_bits=0)


class TestWorkConservation:
    def test_every_discipline_serves_sole_candidate(self):
        lone = [view("only", ServiceClass.BE)]
        for name in available_disciplines():
            sched = make_scheduler(name)
            for _ in range(5):
                assert sched.pick(lone, 0.0) == "only"
