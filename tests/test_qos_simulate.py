"""Grant-level service-flow simulator."""

import pytest

from repro import obs
from repro.errors import ConfigurationError
from repro.mesh16.frame import default_frame_config
from repro.net.topology import chain_topology
from repro.qos import (
    ServiceClass,
    ServiceFlow,
    ServiceFlowSet,
    TrafficContract,
    grant_schedule_for,
    simulate_service_flows,
)

FRAME = default_frame_config()
CAP = FRAME.data_slot_capacity_bits
SLOT_RATE = CAP / FRAME.frame_duration_s


def sf(name, src, cls, min_slots=0.0, sustained_slots=None, latency=None,
       jitter=None, pkt=None):
    contract = TrafficContract(
        min_reserved_rate_bps=min_slots * SLOT_RATE,
        max_sustained_rate_bps=(None if sustained_slots is None
                                else sustained_slots * SLOT_RATE),
        max_latency_s=latency, tolerated_jitter_s=jitter)
    return ServiceFlow(name, src, 0, cls, contract,
                       packet_bits=pkt if pkt else CAP)


def saturating_set():
    return ServiceFlowSet([
        sf("voip0", 1, ServiceClass.UGS, 2, 2, latency=0.05, pkt=CAP // 2),
        sf("video0", 2, ServiceClass.RTPS, 2, 4, latency=0.1),
        sf("stream0", 1, ServiceClass.NRTPS, 1, 2),
        sf("bulk0", 2, ServiceClass.BE, 0, 4, pkt=CAP // 2),
        sf("bulk1", 1, ServiceClass.BE, 0, 4),
    ])


def run(discipline, num_frames=120, flows=None):
    flows = flows if flows is not None else saturating_set()
    schedule, routed = grant_schedule_for(chain_topology(3), flows, FRAME)
    return simulate_service_flows(routed, schedule, FRAME, discipline,
                                  num_frames=num_frames)


class TestValidation:
    def test_unrouted_rejected(self):
        flows = saturating_set()
        schedule, routed = grant_schedule_for(chain_topology(3), flows,
                                              FRAME)
        with pytest.raises(ConfigurationError, match="unrouted"):
            simulate_service_flows(flows, schedule, FRAME, "strict")

    def test_oversized_packet_rejected(self):
        flows = ServiceFlowSet([ServiceFlow(
            "big", 1, 0, ServiceClass.BE,
            TrafficContract(max_sustained_rate_bps=1e6),
            packet_bits=CAP + 1)])
        schedule, routed = grant_schedule_for(chain_topology(3), flows,
                                              FRAME)
        with pytest.raises(ConfigurationError, match="never fit"):
            simulate_service_flows(routed, schedule, FRAME, "strict")

    def test_bad_frame_count(self):
        with pytest.raises(ConfigurationError, match="num_frames"):
            run("strict", num_frames=0)


class TestDeterminism:
    def test_identical_reruns(self):
        first = run("drr")
        second = run("drr")
        assert first.per_flow == second.per_flow
        assert first.per_class == second.per_class
        assert first.flow_jain_index == second.flow_jain_index
        assert first.grants_idle == second.grants_idle


class TestServiceSemantics:
    def test_ugs_contract_met_under_all_disciplines(self):
        for discipline in ("strict", "wrr", "drr", "edf"):
            res = run(discipline)
            ugs = res.stats_for(ServiceClass.UGS)
            assert ugs.latency_violations == 0
            assert ugs.min_rate_met

    def test_strict_starves_multihop_be(self):
        res = run("strict")
        assert res.per_flow["bulk0"].received == 0
        assert not res.per_flow["bulk0"].has_samples

    def test_drr_serves_every_backlogged_flow(self):
        res = run("drr")
        for name, qos in res.per_flow.items():
            assert qos.received > 0, name

    def test_rtps_latency_trade(self):
        strict = run("strict").stats_for(ServiceClass.RTPS)
        drr = run("drr").stats_for(ServiceClass.RTPS)
        assert strict.latency_violations == 0
        assert drr.latency_violations > 0

    def test_work_conserving_at_saturation(self):
        res = run("strict")
        # the only idle grants are pipeline fill in the first frames
        assert res.grants_idle <= 2 * FRAME.data_slots
        assert res.grants_total == sum(
            1 for _ in range(res.num_frames)) * 16

    def test_offered_volume_accounted(self):
        res = run("wrr")
        for name, qos in res.per_flow.items():
            assert 0 <= qos.received <= qos.sent


class TestObservability:
    def test_metrics_published_deterministically(self):
        with obs.use_registry(obs.MetricsRegistry()) as first:
            run("drr")
        with obs.use_registry(obs.MetricsRegistry()) as second:
            run("drr")
        assert first.snapshot() == second.snapshot()
        counters = first.snapshot()["counters"]
        gauges = first.snapshot()["gauges"]
        assert counters["qos.grants.total"] == 120 * 16
        assert "qos.fairness.jain_index" in gauges
        assert "qos.starvation.max_queue_age_s.BE" in gauges
        assert counters["qos.contract.latency_violations.rtPS"] > 0
