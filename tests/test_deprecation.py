"""Deprecation shims: old spellings keep working and warn exactly once."""

import warnings

import pytest

from repro import _deprecation
from repro.core.minslots import minimum_slots
from repro.core.conflict import conflict_graph
from repro.net.flows import Flow, FlowSet
from repro.net.routing import route_all
from repro.net.topology import chain_topology
from repro.mesh16.frame import default_frame_config


@pytest.fixture(autouse=True)
def fresh_warning_state():
    _deprecation.reset_warned()
    yield
    _deprecation.reset_warned()


def _search():
    topo = chain_topology(4)
    frame = default_frame_config()
    flows = route_all(topo, FlowSet([
        Flow("f", src=0, dst=3, rate_bps=64_000)]))
    demands = flows.link_demands(frame.frame_duration_s,
                                 frame.data_slot_capacity_bits)
    return minimum_slots(conflict_graph(topo, links=demands.keys()),
                         demands, frame.data_slots)


def test_warn_once_warns_once():
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        _deprecation.warn_once("k", "old spelling")
        _deprecation.warn_once("k", "old spelling")
        _deprecation.warn_once("other", "different key")
    assert len(caught) == 2
    assert all(issubclass(w.category, DeprecationWarning) for w in caught)


def test_minslot_result_dot_result_warns_once_and_still_works():
    search = _search()
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        legacy = search.result          # deprecated spelling
        legacy_again = search.result    # second access: no second warning
    deprecations = [w for w in caught
                    if issubclass(w.category, DeprecationWarning)]
    assert len(deprecations) == 1
    assert ".schedule" in str(deprecations[0].message)
    # the shim still hands back the full ILP result
    assert legacy is legacy_again is search.ilp
    assert legacy.schedule.to_dict() == search.schedule.to_dict()


def test_new_spellings_do_not_warn():
    search = _search()
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        assert search.schedule is not None
        assert search.order is not None
        assert search.feasible
    assert not [w for w in caught
                if issubclass(w.category, DeprecationWarning)]


def test_repro_itself_triggers_zero_deprecation_warnings():
    """The package must not consume its own deprecated shims.

    Drives a representative slice of the stack -- facade scheduling, the
    solver engine, repair, simulation -- with DeprecationWarning promoted
    to an error, so any internal caller still on a deprecated spelling
    fails here rather than warning downstream users.
    """
    from repro import Scenario
    from repro.core.repair import RepairEngine

    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        topo = chain_topology(4)
        frame = default_frame_config()
        flows = route_all(topo, FlowSet([
            Flow("f", src=0, dst=3, rate_bps=64_000,
                 delay_budget_s=0.1)]))
        scenario = Scenario(topo, flows, frame=frame)
        search = scenario.schedule()
        assert search.feasible
        scenario.simulate(duration_s=0.3, seed=7)

        repair = RepairEngine(topo, frame)
        repair.install(list(flows))
        repair.retarget(frozenset(), frozenset({(1, 2)}))
        _search()
