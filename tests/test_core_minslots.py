"""Minimum-slots linear search."""

import pytest

from repro.core.conflict import conflict_graph
from repro.core.ilp import DelayConstraint
from repro.core.minslots import demand_lower_bound, minimum_slots
from repro.errors import ConfigurationError
from repro.net.topology import chain_topology, star_topology


def chain_instance(hops=4):
    topology = chain_topology(hops + 1)
    route = tuple((i, i + 1) for i in range(hops))
    demands = {link: 1 for link in route}
    conflicts = conflict_graph(topology, hops=2, links=demands.keys())
    return conflicts, demands, route


class TestLowerBound:
    def test_single_link(self, chain5):
        conflicts = conflict_graph(chain5, hops=2)
        assert demand_lower_bound(conflicts, {(0, 1): 3}) == 3

    def test_node_clique(self):
        topo = star_topology(3)
        conflicts = conflict_graph(topo, hops=2)
        demands = {(0, 1): 1, (0, 2): 1, (0, 3): 1}
        assert demand_lower_bound(conflicts, demands) == 3

    def test_empty(self, chain5):
        conflicts = conflict_graph(chain5, hops=2)
        assert demand_lower_bound(conflicts, {}) == 0


class TestLinearSearch:
    def test_chain_bandwidth_only(self):
        conflicts, demands, ____ = chain_instance(4)
        result = minimum_slots(conflicts, demands, frame_slots=16)
        # links (0,1),(1,2),(2,3) mutually conflict -> 3 slots; (3,4)
        # conflicts with (1,2),(2,3) but can reuse (0,1)'s slot
        assert result.slots == 3
        assert result.feasible
        result.schedule.validate(conflicts)

    def test_star_needs_total_demand(self):
        topo = star_topology(4)
        conflicts = conflict_graph(topo, hops=2)
        demands = {(0, i): 2 for i in range(1, 5)}
        result = minimum_slots(conflicts, demands, frame_slots=16)
        assert result.slots == 8
        # lower bound is tight here, so the search probes exactly once
        assert result.iterations == 1

    def test_delay_constraint_grows_min_slots(self):
        conflicts, demands, route = chain_instance(4)
        unconstrained = minimum_slots(conflicts, demands, frame_slots=16)
        constrained = minimum_slots(
            conflicts, demands, frame_slots=16,
            delay_constraints=[DelayConstraint("f", route, 16)])
        # zero wraps requires a forward pipeline: 4 distinct slots
        assert constrained.slots == 4
        assert constrained.slots > unconstrained.slots

    def test_infeasible_when_ceiling_too_low(self):
        topo = star_topology(3)
        conflicts = conflict_graph(topo, hops=2)
        demands = {(0, 1): 4, (0, 2): 4, (0, 3): 4}
        result = minimum_slots(conflicts, demands, frame_slots=8)
        assert not result.feasible
        assert result.slots is None
        # lower bound 12 > frame: no probe needed
        assert result.iterations == 0

    def test_infeasible_after_probing(self):
        conflicts, demands, route = chain_instance(5)
        # 1-frame budget needs 5 forward slots; cap region at 4
        result = minimum_slots(
            conflicts, demands, frame_slots=16,
            delay_constraints=[DelayConstraint("f", route, 16)],
            max_region=4)
        assert not result.feasible
        assert result.probes  # it did try

    def test_probes_recorded_in_order(self):
        conflicts, demands, ____ = chain_instance(4)
        result = minimum_slots(conflicts, demands, frame_slots=16)
        regions = [region for region, ____ in result.probes]
        assert regions == sorted(regions)
        assert result.probes[-1][1] is True
        assert all(not ok for ____, ok in result.probes[:-1])

    def test_empty_demands(self, chain5):
        conflicts = conflict_graph(chain5, hops=2)
        result = minimum_slots(conflicts, {}, frame_slots=8)
        assert result.slots == 0


class TestBinarySearch:
    def test_matches_linear(self):
        conflicts, demands, route = chain_instance(5)
        constraints = [DelayConstraint("f", route, 16)]
        linear = minimum_slots(conflicts, demands, 16,
                               delay_constraints=constraints)
        binary = minimum_slots(conflicts, demands, 16,
                               delay_constraints=constraints,
                               search="binary")
        assert binary.slots == linear.slots

    def test_binary_uses_fewer_probes_on_wide_ranges(self):
        topo = star_topology(4)
        conflicts = conflict_graph(topo, hops=2)
        # make the lower bound loose by mixing demands
        demands = {(0, 1): 1, (0, 2): 1, (0, 3): 1, (0, 4): 1,
                   (1, 0): 1, (2, 0): 1, (3, 0): 1, (4, 0): 1}
        linear = minimum_slots(conflicts, demands, 64)
        binary = minimum_slots(conflicts, demands, 64, search="binary")
        assert binary.slots == linear.slots

    def test_binary_infeasible(self):
        topo = star_topology(3)
        conflicts = conflict_graph(topo, hops=2)
        demands = {(0, 1): 4, (0, 2): 4, (0, 3): 4}
        result = minimum_slots(conflicts, demands, 11, search="binary")
        assert not result.feasible


class TestValidation:
    def test_unknown_search_mode(self, chain5):
        conflicts = conflict_graph(chain5, hops=2)
        with pytest.raises(ConfigurationError):
            minimum_slots(conflicts, {(0, 1): 1}, 8, search="exponential")

    def test_max_region_exceeding_frame(self, chain5):
        conflicts = conflict_graph(chain5, hops=2)
        with pytest.raises(ConfigurationError):
            minimum_slots(conflicts, {(0, 1): 1}, 8, max_region=9)
