"""PHY frame model."""

from repro.phy.frames import FrameKind, PhyFrame


def test_broadcast_detection():
    frame = PhyFrame(FrameKind.DATA, src=1, dst=None, size_bits=100)
    assert frame.is_broadcast
    unicast = PhyFrame(FrameKind.DATA, src=1, dst=2, size_bits=100)
    assert not unicast.is_broadcast


def test_frame_ids_unique_and_increasing():
    a = PhyFrame(FrameKind.DATA, 0, 1, 10)
    b = PhyFrame(FrameKind.ACK, 1, 0, 10)
    assert a.frame_id != b.frame_id
    assert b.frame_id > a.frame_id


def test_payload_carried_opaquely():
    payload = {"anything": [1, 2, 3]}
    frame = PhyFrame(FrameKind.CONTROL, 0, None, 10, payload)
    assert frame.payload is payload


def test_kinds():
    assert {k.value for k in FrameKind} == {"data", "ack", "rts", "cts",
                                            "beacon", "control"}
