"""Table rendering."""

from repro.analysis.reporting import format_cell, format_table


class TestFormatCell:
    def test_bool(self):
        assert format_cell(True) == "yes"
        assert format_cell(False) == "no"

    def test_nan_dash(self):
        assert format_cell(float("nan")) == "-"

    def test_floats(self):
        assert format_cell(3.14159) == "3.142"
        assert format_cell(0.0) == "0"

    def test_extreme_floats_scientific(self):
        assert "e" in format_cell(1.5e-7)
        assert "e" in format_cell(2.5e9)

    def test_strings_and_ints(self):
        assert format_cell("abc") == "abc"
        assert format_cell(42) == "42"
        assert format_cell(None) == "None"


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "long_header"],
                            [[1, 2], [333, 4]])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "long_header" in lines[0]
        # all rows equally wide or shorter than the header line
        positions = [line.index("2") if "2" in line else None
                     for line in lines]
        assert len(lines) == 4  # header, rule, two rows

    def test_title(self):
        text = format_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_empty_rows(self):
        text = format_table(["x", "y"], [])
        assert "x" in text and "y" in text
