"""Fault injector: state tracking, hook dispatch, listener protocol."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.faults import FaultEvent, FaultInjector, FaultPlan
from repro.phy.channel import BroadcastChannel
from repro.phy.radio import PhyParams
from repro.sim.clock import DriftingClock
from repro.sim.engine import Simulator
from repro.units import US

TEST_PHY = PhyParams("test", data_rate_bps=1e6, basic_rate_bps=1e6,
                     plcp_overhead_s=0.0, propagation_delay_s=1 * US)


class Recorder:
    def __init__(self):
        self.events = []

    def on_fault(self, event):
        self.events.append(event)


def test_victims_validated_against_topology(chain5):
    plan = FaultPlan([FaultEvent(0.0, "node_down", node=42)])
    with pytest.raises(ConfigurationError, match="node 42"):
        FaultInjector(plan, chain5)


def test_analytic_state_tracking(chain5):
    plan = FaultPlan.scripted([
        FaultEvent(1.0, "node_down", node=2),
        FaultEvent(2.0, "link_down", link=(3, 4)),
        FaultEvent(3.0, "node_up", node=2),
    ], chain5)
    injector = FaultInjector(plan, chain5)
    injector.run_plan()
    assert injector.dead_nodes == frozenset()
    assert injector.dead_edges == frozenset({(3, 4)})
    assert len(injector.applied) == 3


def test_dead_directed_links(chain5):
    plan = FaultPlan.scripted([
        FaultEvent(1.0, "node_down", node=2),
        FaultEvent(2.0, "link_down", link=(0, 1)),
    ], chain5)
    injector = FaultInjector(plan, chain5)
    injector.run_plan()
    assert injector.dead_directed_links() == frozenset(
        {(0, 1), (1, 0), (1, 2), (2, 1), (2, 3), (3, 2)})


def test_listeners_see_post_event_state(chain5):
    class StateProbe:
        def __init__(self, injector_ref):
            self.injector = injector_ref
            self.snapshots = []

        def on_fault(self, event):
            self.snapshots.append((event.kind, self.injector[0].dead_nodes))

    plan = FaultPlan.scripted([FaultEvent(1.0, "node_down", node=1)], chain5)
    holder = []
    probe = StateProbe(holder)
    injector = FaultInjector(plan, chain5, listeners=[probe])
    holder.append(injector)
    injector.run_plan()
    assert probe.snapshots == [("node_down", frozenset({1}))]


def test_add_listener_requires_on_fault(chain5):
    injector = FaultInjector(FaultPlan([]), chain5)
    with pytest.raises(ConfigurationError, match="on_fault"):
        injector.add_listener(object())


def test_arm_drives_channel_at_event_times(chain5):
    sim = Simulator()
    channel = BroadcastChannel(sim, chain5, TEST_PHY)
    plan = FaultPlan.scripted([
        FaultEvent(1.0, "node_down", node=2),
        FaultEvent(2.0, "link_down", link=(0, 1)),
        FaultEvent(3.0, "node_up", node=2),
    ], chain5)
    recorder = Recorder()
    injector = FaultInjector(plan, chain5, sim=sim, channel=channel,
                             listeners=[recorder])
    injector.arm()
    sim.run(until=1.5)
    assert channel.node_is_down(2)
    assert not channel.link_is_down((0, 1))
    sim.run(until=3.5)
    assert not channel.node_is_down(2)
    assert channel.link_is_down((0, 1))
    assert [e.kind for e in recorder.events] == [
        "node_down", "link_down", "node_up"]


def test_arm_requires_sim_and_is_once_only(chain5):
    injector = FaultInjector(FaultPlan([]), chain5)
    with pytest.raises(ConfigurationError, match="simulator"):
        injector.arm()
    armed = FaultInjector(FaultPlan([]), chain5, sim=Simulator())
    armed.arm()
    with pytest.raises(ConfigurationError, match="armed"):
        armed.arm()


def test_link_loss_updates_channel_error_model(chain5):
    sim = Simulator()
    channel = BroadcastChannel(sim, chain5, TEST_PHY)
    channel.set_error_model(np.random.default_rng(0))
    plan = FaultPlan.scripted(
        [FaultEvent(1.0, "link_loss", link=(1, 2), value=0.5)], chain5)
    FaultInjector(plan, chain5, sim=sim, channel=channel).arm()
    sim.run()
    assert channel._error_rates == {(1, 2): 0.5, (2, 1): 0.5}


def test_clock_glitch_reaches_clock(chain5):
    clocks = {n: DriftingClock() for n in chain5.nodes}
    plan = FaultPlan.scripted(
        [FaultEvent(1.0, "clock_glitch", node=3, value=2e-3)], chain5)
    injector = FaultInjector(plan, chain5, clocks=clocks)
    injector.run_plan()
    assert clocks[3].glitches == 1
    assert clocks[3].offset_at(1.0) == pytest.approx(2e-3)
    assert clocks[0].glitches == 0
