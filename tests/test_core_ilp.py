"""Delay-aware scheduling ILP."""

import pytest

from repro.core.conflict import conflict_graph
from repro.core.delay import path_delay_slots, path_wraps
from repro.core.ilp import (
    DelayConstraint,
    SchedulingProblem,
    solve_schedule_ilp,
)
from repro.errors import ConfigurationError
from repro.net.topology import chain_topology, star_topology


def chain_problem(hops, frame_slots, budget=None, demand=1,
                  minimize=False, region=None):
    topology = chain_topology(hops + 1)
    route = tuple((i, i + 1) for i in range(hops))
    demands = {link: demand for link in route}
    conflicts = conflict_graph(topology, hops=2, links=demands.keys())
    constraints = []
    if budget is not None:
        constraints.append(DelayConstraint("f", route, budget))
    return SchedulingProblem(conflicts, demands, frame_slots,
                             delay_constraints=constraints,
                             minimize_max_delay=minimize,
                             region_slots=region), route


class TestFeasibility:
    def test_trivial_no_demands(self, chain5):
        conflicts = conflict_graph(chain5, hops=2)
        result = solve_schedule_ilp(SchedulingProblem(conflicts, {}, 10))
        assert result.feasible
        assert len(result.schedule) == 0

    def test_single_link(self, chain5):
        conflicts = conflict_graph(chain5, hops=2)
        result = solve_schedule_ilp(
            SchedulingProblem(conflicts, {(0, 1): 2}, 10))
        assert result.feasible
        assert result.schedule.block((0, 1)).length == 2

    def test_schedule_is_conflict_free(self):
        problem, ____ = chain_problem(hops=5, frame_slots=12)
        result = solve_schedule_ilp(problem)
        assert result.feasible
        result.schedule.validate(problem.conflicts)

    def test_demand_exceeding_frame_infeasible(self, chain5):
        conflicts = conflict_graph(chain5, hops=2)
        result = solve_schedule_ilp(
            SchedulingProblem(conflicts, {(0, 1): 11}, 10))
        assert not result.feasible

    def test_clique_overload_infeasible(self):
        topo = star_topology(3)
        conflicts = conflict_graph(topo, hops=2)
        demands = {(0, 1): 2, (0, 2): 2, (0, 3): 2}  # 6 > 5 slots
        result = solve_schedule_ilp(SchedulingProblem(conflicts, demands, 5))
        assert not result.feasible

    def test_clique_exactly_fits(self):
        topo = star_topology(3)
        conflicts = conflict_graph(topo, hops=2)
        demands = {(0, 1): 2, (0, 2): 2, (0, 3): 2}
        result = solve_schedule_ilp(SchedulingProblem(conflicts, demands, 6))
        assert result.feasible
        result.schedule.validate(conflicts)


class TestDelayConstraints:
    def test_one_frame_budget_forces_zero_wraps(self):
        problem, route = chain_problem(hops=5, frame_slots=16, budget=16)
        result = solve_schedule_ilp(problem)
        assert result.feasible
        assert path_wraps(result.schedule, route) == 0
        assert result.max_delay_slots <= 16

    def test_tight_budget_infeasible_when_region_small(self):
        # region 3 cannot pipeline 5 hops without wrapping, and a 1-frame
        # budget forbids wrapping
        problem, ____ = chain_problem(hops=5, frame_slots=16, budget=16,
                                      region=3)
        result = solve_schedule_ilp(problem)
        assert not result.feasible

    def test_loose_budget_feasible_in_small_region(self):
        problem, route = chain_problem(hops=5, frame_slots=16, budget=100,
                                       region=3)
        result = solve_schedule_ilp(problem)
        assert result.feasible
        assert result.schedule.makespan() <= 3
        assert path_delay_slots(result.schedule, route) <= 100

    def test_reported_max_delay_matches_schedule(self):
        problem, route = chain_problem(hops=4, frame_slots=12, budget=40)
        result = solve_schedule_ilp(problem)
        assert result.max_delay_slots == path_delay_slots(result.schedule,
                                                          route)

    def test_budget_is_respected(self):
        for budget in (16, 32, 48):
            problem, route = chain_problem(hops=6, frame_slots=16,
                                           budget=budget)
            result = solve_schedule_ilp(problem)
            assert result.feasible
            assert path_delay_slots(result.schedule, route) <= budget

    def test_undemanded_route_link_rejected(self, chain5):
        conflicts = conflict_graph(chain5, hops=2)
        problem = SchedulingProblem(
            conflicts, {(0, 1): 1}, 10,
            delay_constraints=[DelayConstraint(
                "f", ((0, 1), (1, 2)), 10)])
        with pytest.raises(ConfigurationError, match="undemanded"):
            solve_schedule_ilp(problem)


class TestMinimizeMaxDelay:
    def test_minimized_delay_is_pipeline_depth(self):
        problem, route = chain_problem(hops=5, frame_slots=16,
                                       budget=160, minimize=True)
        result = solve_schedule_ilp(problem)
        # optimal: one slot per hop back-to-back = 5 slots
        assert result.max_delay_slots == 5

    def test_minimize_beats_or_matches_feasibility_only(self):
        feasible, route = chain_problem(hops=4, frame_slots=16, budget=64)
        optimal, ____ = chain_problem(hops=4, frame_slots=16, budget=64,
                                      minimize=True)
        d_feasible = solve_schedule_ilp(feasible).max_delay_slots
        d_optimal = solve_schedule_ilp(optimal).max_delay_slots
        assert d_optimal <= d_feasible

    def test_two_crossing_flows_minmax(self, chain5):
        conflicts = conflict_graph(chain5, hops=2)
        up = ((0, 1), (1, 2), (2, 3), (3, 4))
        down = ((4, 3), (3, 2), (2, 1), (1, 0))
        demands = {l: 1 for l in up + down}
        problem = SchedulingProblem(
            conflicts, demands, 16,
            delay_constraints=[DelayConstraint("up", up, 160),
                               DelayConstraint("down", down, 160)],
            minimize_max_delay=True)
        result = solve_schedule_ilp(problem)
        assert result.feasible
        worst = max(path_delay_slots(result.schedule, up),
                    path_delay_slots(result.schedule, down))
        assert worst == result.max_delay_slots
        # each direction needs at least its own pipeline depth...
        assert worst >= 4
        # ...and the two pipelines cannot overlap in time (every up link
        # conflicts with every down link on this short chain), so the
        # schedule spans at least the total demand
        assert result.schedule.makespan() >= 8


class TestResultMetadata:
    def test_order_consistent_with_schedule(self):
        problem, route = chain_problem(hops=4, frame_slots=12, budget=48)
        result = solve_schedule_ilp(problem)
        for prev, nxt in zip(route, route[1:]):
            blocks = (result.schedule.block(prev),
                      result.schedule.block(nxt))
            if result.order.precedes(prev, nxt):
                assert blocks[0].end <= blocks[1].start
            else:
                assert blocks[1].end <= blocks[0].start

    def test_counts_reported(self):
        problem, ____ = chain_problem(hops=3, frame_slots=10)
        result = solve_schedule_ilp(problem)
        assert result.num_variables > 0
        assert result.num_constraints > 0
        assert result.solve_seconds >= 0

    def test_region_property_validation(self, chain5):
        conflicts = conflict_graph(chain5, hops=2)
        problem = SchedulingProblem(conflicts, {(0, 1): 1}, 10,
                                    region_slots=11)
        with pytest.raises(ConfigurationError):
            solve_schedule_ilp(problem)

    def test_invalid_frame_rejected(self, chain5):
        conflicts = conflict_graph(chain5, hops=2)
        with pytest.raises(ConfigurationError):
            solve_schedule_ilp(SchedulingProblem(conflicts, {(0, 1): 1}, 0))


class TestDelayConstraintValidation:
    def test_empty_route_rejected(self):
        with pytest.raises(ConfigurationError):
            DelayConstraint("f", (), 10)

    def test_nonpositive_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            DelayConstraint("f", ((0, 1),), 0)

    def test_discontiguous_route_rejected(self):
        with pytest.raises(ConfigurationError):
            DelayConstraint("f", ((0, 1), (2, 3)), 10)
