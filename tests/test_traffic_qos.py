"""QoS metrics and the E-model."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.traffic.qos import (
    FlowQoS,
    e_model_r_factor,
    mos_from_r,
    rfc3550_jitter,
)
from repro.traffic.voip import G711, G729


class TestEModel:
    def test_perfect_call_near_ceiling(self):
        r = e_model_r_factor(0.0, 0.0, G711)
        assert r == pytest.approx(93.2)

    def test_delay_impairment_grows(self):
        r_small = e_model_r_factor(0.050, 0.0, G711)
        r_large = e_model_r_factor(0.300, 0.0, G711)
        assert r_small > r_large

    def test_kink_at_177ms(self):
        # the slope steepens past 177.3 ms
        slope_before = (e_model_r_factor(0.100, 0, G711)
                        - e_model_r_factor(0.150, 0, G711)) / 50
        slope_after = (e_model_r_factor(0.200, 0, G711)
                       - e_model_r_factor(0.250, 0, G711)) / 50
        assert slope_after > slope_before

    def test_loss_impairment(self):
        assert e_model_r_factor(0.05, 0.05, G711) < \
            e_model_r_factor(0.05, 0.0, G711)

    def test_g729_starts_lower(self):
        assert e_model_r_factor(0.05, 0.0, G729) < \
            e_model_r_factor(0.05, 0.0, G711)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            e_model_r_factor(-0.1, 0.0, G711)
        with pytest.raises(ConfigurationError):
            e_model_r_factor(0.1, 1.5, G711)


class TestMos:
    def test_range(self):
        assert mos_from_r(-10) == 1.0
        assert mos_from_r(0) == 1.0
        assert mos_from_r(100) == 4.5
        assert mos_from_r(200) == 4.5

    def test_monotone(self):
        values = [mos_from_r(r) for r in range(0, 101, 10)]
        assert values == sorted(values)

    def test_toll_quality_threshold(self):
        # R = 80 is the classic "satisfied" boundary, ~MOS 4.0
        assert mos_from_r(80) == pytest.approx(4.0, abs=0.1)


class TestJitter:
    def test_constant_delay_zero_jitter(self):
        assert rfc3550_jitter([0.01] * 20) == pytest.approx(0.0)

    def test_alternating_delay_converges(self):
        delays = [0.01, 0.02] * 100
        jitter = rfc3550_jitter(delays)
        assert 0.005 < jitter <= 0.010

    def test_empty_and_single(self):
        assert rfc3550_jitter([]) == 0.0
        assert rfc3550_jitter([0.5]) == 0.0


class TestFlowQoS:
    def test_from_samples(self):
        delays = [0.01 * (i + 1) for i in range(100)]
        qos = FlowQoS.from_samples("f", sent=110, received=100,
                                   delays=delays)
        assert qos.mean_delay_s == pytest.approx(0.505)
        assert qos.p50_delay_s == pytest.approx(0.50)
        assert qos.p95_delay_s == pytest.approx(0.95)
        assert qos.p99_delay_s == pytest.approx(0.99)
        assert qos.max_delay_s == pytest.approx(1.0)
        assert qos.loss_fraction == pytest.approx(10 / 110)

    def test_empty_samples_nan(self):
        qos = FlowQoS.from_samples("f", sent=10, received=0, delays=[])
        assert math.isnan(qos.mean_delay_s)
        assert qos.loss_fraction == 1.0

    def test_nothing_sent_no_loss(self):
        qos = FlowQoS.from_samples("f", sent=0, received=0, delays=[])
        assert qos.loss_fraction == 0.0

    def test_mos_uses_choice_of_delay_metric(self):
        delays = [0.01] * 99 + [0.5]
        qos = FlowQoS.from_samples("f", sent=100, received=100,
                                   delays=delays)
        assert qos.mos(G711, delay_metric="p50") > \
            qos.mos(G711, delay_metric="max")

    def test_mos_of_dead_flow_is_one(self):
        qos = FlowQoS.from_samples("f", sent=100, received=0, delays=[])
        assert qos.mos(G711) == 1.0

    def test_unknown_metric_rejected(self):
        qos = FlowQoS.from_samples("f", 1, 1, [0.01])
        with pytest.raises(ConfigurationError):
            qos.r_factor(G711, delay_metric="median")

    def test_meets_targets(self):
        delays = [0.02] * 100
        qos = FlowQoS.from_samples("f", sent=100, received=100,
                                   delays=delays)
        assert qos.meets(max_delay_s=0.05, max_loss=0.01)
        assert not qos.meets(max_delay_s=0.01)
        lossy = FlowQoS.from_samples("f", sent=100, received=90,
                                     delays=delays[:90])
        assert not lossy.meets(max_loss=0.05)
        assert lossy.meets(max_loss=0.15)

    def test_meets_with_no_deliveries_fails_delay(self):
        qos = FlowQoS.from_samples("f", sent=10, received=0, delays=[])
        assert not qos.meets(max_delay_s=1.0)


class TestSerialization:
    def test_empty_flow_flagged_and_json_safe(self):
        import json
        qos = FlowQoS.from_samples("f", sent=10, received=0, delays=[])
        assert qos.has_samples is False
        data = qos.to_dict()
        assert data["mean_delay_s"] is None
        assert data["p95_delay_s"] is None
        # strict JSON: NaN would raise with allow_nan=False
        text = json.dumps(data, allow_nan=False)
        assert '"has_samples": false' in text

    def test_delivering_flow_serializes_numbers(self):
        qos = FlowQoS.from_samples("f", sent=4, received=4,
                                   delays=[0.01, 0.02, 0.03, 0.04])
        assert qos.has_samples is True
        data = qos.to_dict()
        assert data["mean_delay_s"] == pytest.approx(0.025)
        assert data["sent"] == 4 and data["received"] == 4

    def test_round_trip(self):
        for qos in (FlowQoS.from_samples("f", 10, 0, []),
                    FlowQoS.from_samples("g", 5, 4, [0.01, 0.02, 0.3, 0.4])):
            again = FlowQoS.from_dict(qos.to_dict())
            assert again == qos or (not qos.has_samples
                                    and again.flow_name == qos.flow_name
                                    and math.isnan(again.mean_delay_s))
