"""Cold-start behaviour: lock acquisition and class-priority queues."""

import pytest

from repro.analysis.scenarios import (
    make_voip_flows,
    run_tdma_scenario,
    schedule_for_flows,
)
from repro.core.schedule import Schedule, SlotBlock
from repro.mesh16.frame import default_frame_config
from repro.net.packet import Packet
from repro.net.topology import chain_topology, grid_topology
from repro.sim.random import RngRegistry
from repro.traffic.voip import G729


@pytest.mark.slow
def test_cold_start_acquires_lock_and_stabilizes():
    """Clocks start up to +-2 ms apart (a whole control subframe!); the
    beacon flood must pull everyone in, after which the mesh runs clean."""
    topology = grid_topology(3, 3)
    frame = default_frame_config()
    rngs = RngRegistry(seed=91)
    flows = make_voip_flows(topology, 2, rngs, codec=G729, gateway=0,
                            delay_budget_s=0.1)
    schedule = schedule_for_flows(topology, flows, frame)
    result = run_tdma_scenario(
        topology, flows, frame, schedule, duration_s=6.0,
        rngs=rngs.spawn("run"), drift_ppm=10.0,
        start_synced=False, initial_offset_bound_s=2e-3,
        codec=G729, warmup_s=2.0)
    samples = result.extras["sync_error_samples"]
    # earliest samples see the cold start; the last second must be locked
    assert samples[-1] < frame.guard_s
    assert max(samples[-5:]) < frame.guard_s
    # after warmup, packets flow with bounded delay
    for qos in result.qos.values():
        assert qos.received > 0
        assert qos.p95_delay_s < 0.05


def test_guaranteed_class_preempts_bulk_in_link_queue():
    """A guaranteed packet enqueued behind a pile of bulk fragments must
    still leave first (class-priority queueing)."""
    from repro.mesh16.network import ControlPlane
    from repro.overlay.emulation import TdmaOverlay
    from repro.overlay.sync import SyncConfig, SyncDaemon
    from repro.phy.channel import BroadcastChannel
    from repro.sim.clock import DriftingClock
    from repro.sim.engine import Simulator
    from repro.sim.trace import Trace

    topology = chain_topology(2)
    frame = default_frame_config()
    sim = Simulator()
    trace = Trace()
    channel = BroadcastChannel(sim, topology, frame.phy, trace)
    rngs = RngRegistry(seed=5)
    clocks = {n: DriftingClock() for n in topology.nodes}
    daemons = {n: SyncDaemon(n, 0, clocks[n], SyncConfig(),
                             rngs.stream(f"s{n}"), trace)
               for n in topology.nodes}
    delivered = []
    overlay = TdmaOverlay(
        sim, topology, channel, frame, ControlPlane(topology, 0, frame),
        Schedule(frame.data_slots, {(0, 1): SlotBlock(0, 1)}),
        clocks, daemons,
        on_packet=lambda n, p: delivered.append(p.flow), trace=trace)

    # ten bulk packets first, then one VoIP packet
    for seq in range(10):
        overlay.transmit(0, Packet(flow="bulk", seq=seq, size_bits=800,
                                   created_s=0.0, route=((0, 1),),
                                   priority=1))
    overlay.transmit(0, Packet(flow="voip", seq=0, size_bits=480,
                               created_s=0.0, route=((0, 1),), priority=0))
    overlay.start()
    sim.run(until=0.2)
    assert delivered[0] == "voip"
    assert delivered.count("bulk") == 10


def test_equal_priority_stays_fifo():
    from repro.mesh16.network import ControlPlane
    from repro.overlay.emulation import TdmaOverlay
    from repro.overlay.sync import SyncConfig, SyncDaemon
    from repro.phy.channel import BroadcastChannel
    from repro.sim.clock import DriftingClock
    from repro.sim.engine import Simulator
    from repro.sim.trace import Trace

    topology = chain_topology(2)
    frame = default_frame_config()
    sim = Simulator()
    channel = BroadcastChannel(sim, topology, frame.phy)
    rngs = RngRegistry(seed=5)
    clocks = {n: DriftingClock() for n in topology.nodes}
    daemons = {n: SyncDaemon(n, 0, clocks[n], SyncConfig(),
                             rngs.stream(f"s{n}"))
               for n in topology.nodes}
    delivered = []
    overlay = TdmaOverlay(
        sim, topology, channel, frame, ControlPlane(topology, 0, frame),
        Schedule(frame.data_slots, {(0, 1): SlotBlock(0, 1)}),
        clocks, daemons,
        on_packet=lambda n, p: delivered.append(p.seq))
    for seq in range(6):
        overlay.transmit(0, Packet(flow="voip", seq=seq, size_bits=480,
                                   created_s=0.0, route=((0, 1),),
                                   priority=0))
    overlay.start()
    sim.run(until=0.1)
    assert delivered == list(range(6))
