"""Property-based tests for QoS metrics and shim fragmentation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.packet import Packet
from repro.overlay.shim import Reassembler, fragment_packet
from repro.traffic.qos import FlowQoS, e_model_r_factor, mos_from_r
from repro.traffic.voip import G711, G723, G729

delays = st.lists(st.floats(min_value=0.0, max_value=2.0,
                            allow_nan=False), min_size=1, max_size=200)


@given(delays)
@settings(max_examples=200, deadline=None)
def test_percentiles_ordered_and_within_range(samples):
    qos = FlowQoS.from_samples("f", sent=len(samples),
                               received=len(samples), delays=samples)
    assert min(samples) <= qos.p50_delay_s <= qos.p95_delay_s
    assert qos.p95_delay_s <= qos.p99_delay_s <= qos.max_delay_s
    assert qos.max_delay_s == max(samples)
    assert min(samples) - 1e-12 <= qos.mean_delay_s <= max(samples) + 1e-12


@given(st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
       st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
       st.sampled_from([G711, G729, G723]))
@settings(max_examples=200, deadline=None)
def test_r_factor_monotone_in_delay_and_loss(delay, loss, codec):
    base = e_model_r_factor(delay, loss, codec)
    assert e_model_r_factor(delay + 0.05, loss, codec) <= base + 1e-9
    if loss <= 0.9:
        assert e_model_r_factor(delay, loss + 0.05, codec) <= base + 1e-9


@given(st.floats(min_value=-50, max_value=150, allow_nan=False))
@settings(max_examples=200, deadline=None)
def test_mos_always_in_valid_band(r):
    mos = mos_from_r(r)
    assert 1.0 <= mos <= 4.5


@given(st.integers(min_value=1, max_value=100_000),
       st.integers(min_value=1, max_value=5000))
@settings(max_examples=200, deadline=None)
def test_fragmentation_preserves_bits_and_reassembles(size, capacity):
    packet = Packet(flow="f", seq=0, size_bits=size, created_s=0.0,
                    route=((0, 1),))
    fragments = fragment_packet(packet, (0, 1), capacity)
    assert sum(f.payload_bits for f in fragments) == size
    assert all(f.payload_bits <= capacity for f in fragments)
    assert [f.index for f in fragments] == list(range(len(fragments)))

    reassembler = Reassembler()
    completed = [reassembler.accept(f) for f in fragments]
    assert completed[-1] is packet
    assert all(c is None for c in completed[:-1])
    assert reassembler.pending == 0
