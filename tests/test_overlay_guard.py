"""Guard-time dimensioning."""

import pytest

from repro.errors import ConfigurationError
from repro.overlay.guard import (
    DEFAULT_TURNAROUND_S,
    max_resync_interval_s,
    required_guard_s,
    slot_overhead_fraction,
)
from repro.units import US, ppm


class TestRequiredGuard:
    def test_linear_in_drift_and_interval(self):
        base = required_guard_s(10, 1.0)
        double_drift = required_guard_s(20, 1.0)
        double_interval = required_guard_s(10, 2.0)
        mutual = 2 * ppm(10) * 1.0
        assert double_drift - base == pytest.approx(mutual)
        assert double_interval - base == pytest.approx(mutual)

    def test_includes_fixed_terms(self):
        guard = required_guard_s(0, 0.0, sync_residual_s=5 * US,
                                 propagation_s=2 * US,
                                 turnaround_s=3 * US)
        assert guard == pytest.approx(10e-6)

    def test_default_turnaround(self):
        guard = required_guard_s(0, 0.0, propagation_s=0.0)
        assert guard == pytest.approx(DEFAULT_TURNAROUND_S)

    def test_negative_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            required_guard_s(-1, 1.0)
        with pytest.raises(ConfigurationError):
            required_guard_s(1, -1.0)


class TestMaxResync:
    def test_inverse_of_required_guard(self):
        for drift in (5.0, 10.0, 50.0):
            for interval in (0.1, 1.0, 10.0):
                guard = required_guard_s(drift, interval,
                                         sync_residual_s=10 * US)
                recovered = max_resync_interval_s(
                    guard, drift, sync_residual_s=10 * US)
                assert recovered == pytest.approx(interval)

    def test_insufficient_guard_yields_zero(self):
        assert max_resync_interval_s(1 * US, 10.0) == 0.0

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            max_resync_interval_s(0.0, 10.0)
        with pytest.raises(ConfigurationError):
            max_resync_interval_s(1e-3, 0.0)


class TestOverheadFraction:
    def test_basic(self):
        assert slot_overhead_fraction(500 * US, 50 * US, 50 * US) == \
            pytest.approx(0.2)

    def test_clamped_at_one(self):
        assert slot_overhead_fraction(100 * US, 200 * US, 50 * US) == 1.0

    def test_invalid_slot(self):
        with pytest.raises(ConfigurationError):
            slot_overhead_fraction(0.0, 1 * US, 1 * US)
