"""Property-based tests: scheduling-discipline invariants.

The load-bearing guarantees of the intra-node service-flow schedulers:
(1) every discipline is work-conserving -- a grant with any backlogged
candidate is never left idle; (2) DRR's deficit never exceeds the
classic quantum-plus-grant bound, which is exactly the fairness bound
of the original DRR paper; (3) EDF is optimal on a single grant stream:
on any trace where strict priority misses no deadline, EDF misses none
either.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.qos import ServiceClass, available_disciplines, make_scheduler
from repro.qos.schedulers import QueueView

CLASSES = [ServiceClass.UGS, ServiceClass.RTPS, ServiceClass.NRTPS,
           ServiceClass.BE]


@st.composite
def queue_views(draw, max_flows=4):
    """A non-empty candidate set of distinct backlogged flows."""
    n = draw(st.integers(min_value=1, max_value=max_flows))
    views = []
    for i in range(n):
        cls = draw(st.sampled_from(CLASSES))
        views.append(QueueView(
            name=f"q{i}",
            service_class=cls,
            weight=draw(st.integers(min_value=1, max_value=8)),
            backlog_bits=draw(st.integers(min_value=1, max_value=50_000)),
            backlog_packets=draw(st.integers(min_value=1, max_value=40)),
            head_created_s=draw(st.floats(min_value=0.0, max_value=5.0,
                                          allow_nan=False)),
            head_deadline_s=draw(st.one_of(
                st.just(float("inf")),
                st.floats(min_value=0.0, max_value=10.0,
                          allow_nan=False)))))
    return views


class TestWorkConservation:
    @given(trace=st.lists(queue_views(), min_size=1, max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_backlogged_grant_is_never_idle(self, trace):
        """Whatever the candidate mix, pick() serves one of them."""
        for name in available_disciplines():
            sched = make_scheduler(name)
            for views in trace:
                picked = sched.pick(views, 0.0)
                assert picked in {v.name for v in views}


class TestDrrFairnessBound:
    @given(trace=st.lists(queue_views(), min_size=1, max_size=25),
           quantum=st.integers(min_value=100, max_value=4000),
           grant=st.integers(min_value=100, max_value=4000))
    @settings(max_examples=60, deadline=None)
    def test_deficit_bounded_by_quantum_plus_grant(self, trace, quantum,
                                                   grant):
        """A flow's stored deficit never exceeds max_weight*quantum + grant.

        This is the invariant behind DRR's O(1) fairness bound: the
        credit a flow can bank is one fresh-visit refill plus at most one
        unspent grant, so no flow builds unbounded claim on the link.
        """
        sched = make_scheduler("drr", quantum_bits=quantum,
                               grant_bits=grant)
        names = set()
        for views in trace:
            sched.pick(views, 0.0)
            names.update(v.name for v in views)
            max_weight = 8  # strategy caps weights at 8
            for name in names:
                assert sched.deficit_of(name) <= max_weight * quantum + grant


def replay_deadline_trace(discipline, arrivals, grant_bits=1000):
    """Serve fixed-size packets one grant per tick; count deadline misses.

    ``arrivals``: list per tick of (deadline_offset or None) new packets.
    Every packet is one ``grant_bits`` unit; a packet whose deadline
    passes before service completes counts as a miss (served or not).
    """
    sched = make_scheduler(discipline)
    queues = {}  # name -> list of (created, deadline)
    misses = 0
    horizon = len(arrivals) + 1
    for tick, batch in enumerate(arrivals):
        now = float(tick)
        for i, offset in enumerate(batch):
            name = f"f{tick}_{i}"
            deadline = float("inf") if offset is None else now + offset
            queues[name] = [(now, deadline)]
        views = [QueueView(name, ServiceClass.RTPS, 1, grant_bits, 1,
                           pkts[0][0], pkts[0][1])
                 for name, pkts in sorted(queues.items()) if pkts]
        if not views:
            continue
        picked = sched.pick(views, now)
        created, deadline = queues[picked].pop(0)
        if now + 1.0 > deadline:
            misses += 1
    for pkts in queues.values():
        misses += sum(1 for _, deadline in pkts if deadline < horizon)
    return misses


class TestEdfOptimality:
    @given(arrivals=st.lists(
        st.lists(st.one_of(st.none(),
                           st.floats(min_value=1.0, max_value=8.0)),
                 min_size=0, max_size=2),
        min_size=1, max_size=12))
    @settings(max_examples=80, deadline=None)
    def test_edf_misses_none_where_strict_misses_none(self, arrivals):
        """EDF optimality, specialised: any trace a non-EDF discipline
        clears without a miss, EDF clears too."""
        if replay_deadline_trace("strict", arrivals) == 0:
            assert replay_deadline_trace("edf", arrivals) == 0

    def test_edf_beats_strict_on_inversion(self):
        """The classic inversion: strict serves by arrival, missing the
        tight deadline that arrived second; EDF reorders and meets both."""
        arrivals = [[3.0, 1.5], []]
        assert replay_deadline_trace("edf", arrivals) == 0
        assert replay_deadline_trace("strict", arrivals) > 0
