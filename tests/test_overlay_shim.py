"""Shim fragmentation and reassembly."""

import pytest

from repro.errors import ConfigurationError
from repro.net.packet import Packet
from repro.overlay.shim import Reassembler, ShimFragment, fragment_packet


def packet(bits=1000):
    return Packet(flow="f", seq=0, size_bits=bits, created_s=0.0,
                  route=((0, 1),))


class TestFragmentation:
    def test_small_packet_single_fragment(self):
        frags = fragment_packet(packet(500), (0, 1), capacity_bits=1000)
        assert len(frags) == 1
        assert frags[0].payload_bits == 500
        assert frags[0].count == 1

    def test_exact_fit_single_fragment(self):
        frags = fragment_packet(packet(1000), (0, 1), capacity_bits=1000)
        assert len(frags) == 1

    def test_large_packet_split(self):
        frags = fragment_packet(packet(2500), (0, 1), capacity_bits=1000)
        assert [f.payload_bits for f in frags] == [1000, 1000, 500]
        assert [f.index for f in frags] == [0, 1, 2]
        assert all(f.count == 3 for f in frags)

    def test_total_bits_preserved(self):
        for size in (1, 999, 1000, 1001, 12345):
            frags = fragment_packet(packet(size), (0, 1), 1000)
            assert sum(f.payload_bits for f in frags) == size

    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            fragment_packet(packet(), (0, 1), 0)

    def test_fragment_validation(self):
        with pytest.raises(ConfigurationError):
            ShimFragment((0, 1), packet(), index=3, count=3,
                         payload_bits=10)
        with pytest.raises(ConfigurationError):
            ShimFragment((0, 1), packet(), index=0, count=1,
                         payload_bits=0)


class TestReassembly:
    def test_single_fragment_immediate(self):
        reassembler = Reassembler()
        original = packet(500)
        frags = fragment_packet(original, (0, 1), 1000)
        assert reassembler.accept(frags[0]) is original

    def test_multi_fragment_completes_on_last(self):
        reassembler = Reassembler()
        original = packet(2500)
        frags = fragment_packet(original, (0, 1), 1000)
        assert reassembler.accept(frags[0]) is None
        assert reassembler.accept(frags[1]) is None
        assert reassembler.accept(frags[2]) is original
        assert reassembler.pending == 0

    def test_out_of_order_fragments(self):
        reassembler = Reassembler()
        original = packet(2500)
        frags = fragment_packet(original, (0, 1), 1000)
        assert reassembler.accept(frags[2]) is None
        assert reassembler.accept(frags[0]) is None
        assert reassembler.accept(frags[1]) is original

    def test_duplicate_fragment_does_not_complete(self):
        reassembler = Reassembler()
        frags = fragment_packet(packet(2000), (0, 1), 1000)
        assert reassembler.accept(frags[0]) is None
        assert reassembler.accept(frags[0]) is None
        assert reassembler.pending == 1

    def test_interleaved_packets(self):
        reassembler = Reassembler()
        p1, p2 = packet(2000), packet(2000)
        f1 = fragment_packet(p1, (0, 1), 1000)
        f2 = fragment_packet(p2, (0, 1), 1000)
        assert reassembler.accept(f1[0]) is None
        assert reassembler.accept(f2[0]) is None
        assert reassembler.accept(f2[1]) is p2
        assert reassembler.accept(f1[1]) is p1

    def test_stale_partials_evicted(self):
        reassembler = Reassembler(max_partial=2)
        partials = [fragment_packet(packet(2000), (0, 1), 1000)
                    for ____ in range(3)]
        for frags in partials:
            reassembler.accept(frags[0])
        assert reassembler.pending == 2
        # the first packet was evicted; completing it now fails silently
        assert reassembler.accept(partials[0][1]) is None
