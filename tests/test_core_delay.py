"""Path delay arithmetic."""

import pytest

from repro.core.delay import (
    max_route_delay,
    order_wraps,
    path_delay_slots,
    path_wraps,
    worst_case_delay_slots,
)
from repro.core.ordering import TransmissionOrder
from repro.core.schedule import Schedule, SlotBlock
from repro.errors import SchedulingError


def schedule_of(frame, blocks):
    return Schedule(frame, {link: SlotBlock(*se) for link, se in
                            blocks.items()})


class TestPathDelay:
    def test_single_hop(self):
        schedule = schedule_of(10, {(0, 1): (3, 2)})
        assert path_delay_slots(schedule, [(0, 1)]) == 2

    def test_forward_pipeline(self):
        schedule = schedule_of(10, {(0, 1): (0, 1), (1, 2): (1, 1),
                                    (2, 3): (2, 1)})
        assert path_delay_slots(schedule, [(0, 1), (1, 2), (2, 3)]) == 3

    def test_gap_within_frame(self):
        schedule = schedule_of(10, {(0, 1): (0, 1), (1, 2): (5, 1)})
        # wait slots 1..4, then transmit in 5
        assert path_delay_slots(schedule, [(0, 1), (1, 2)]) == 6

    def test_wrap_costs_a_frame(self):
        schedule = schedule_of(10, {(0, 1): (5, 1), (1, 2): (0, 1)})
        # finish at 6, next occurrence of slot 0 is 4 slots later, tx 1
        assert path_delay_slots(schedule, [(0, 1), (1, 2)]) == 6
        schedule2 = schedule_of(10, {(0, 1): (5, 1), (1, 2): (5, 1)})
        # same slot cannot relay in-frame: full frame wait
        assert path_delay_slots(schedule2, [(0, 1), (1, 2)]) == 11

    def test_block_end_to_block_start_exactly_adjacent_across_frames(self):
        schedule = schedule_of(4, {(0, 1): (3, 1), (1, 2): (0, 1)})
        # ends at frame boundary; next block starts immediately in the next
        # frame: continuous progression, no extra wait
        assert path_delay_slots(schedule, [(0, 1), (1, 2)]) == 2

    def test_empty_route_rejected(self):
        schedule = schedule_of(4, {})
        with pytest.raises(SchedulingError):
            path_delay_slots(schedule, [])

    def test_discontiguous_route_rejected(self):
        schedule = schedule_of(8, {(0, 1): (0, 1), (2, 3): (1, 1)})
        with pytest.raises(SchedulingError):
            path_delay_slots(schedule, [(0, 1), (2, 3)])

    def test_unscheduled_link_rejected(self):
        schedule = schedule_of(8, {(0, 1): (0, 1)})
        with pytest.raises(SchedulingError):
            path_delay_slots(schedule, [(0, 1), (1, 2)])


class TestWraps:
    def test_zero_wraps_within_frame(self):
        schedule = schedule_of(10, {(0, 1): (0, 1), (1, 2): (1, 1)})
        assert path_wraps(schedule, [(0, 1), (1, 2)]) == 0

    def test_one_wrap(self):
        schedule = schedule_of(10, {(0, 1): (8, 1), (1, 2): (0, 1)})
        # delay = 1 + wait(0 - 9 mod 10 = 1) + 1 = 3 -> still within a
        # frame's worth of slots: 0 wraps by the ceiling definition
        assert path_wraps(schedule, [(0, 1), (1, 2)]) == 0
        schedule2 = schedule_of(4, {(0, 1): (2, 1), (1, 2): (1, 1)})
        # delay = 1 + wait(1 - 3 mod 4 = 2) + 1 = 4 = exactly one frame
        assert path_wraps(schedule2, [(0, 1), (1, 2)]) == 0
        schedule3 = schedule_of(4, {(0, 1): (2, 1), (1, 2): (2, 1)})
        # delay = 1 + 3 + 1 = 5 > one frame
        assert path_wraps(schedule3, [(0, 1), (1, 2)]) == 1

    def test_wraps_accumulate(self):
        frame = 4
        blocks = {(0, 1): (3, 1), (1, 2): (2, 1), (2, 3): (1, 1),
                  (3, 4): (0, 1)}
        schedule = schedule_of(frame, blocks)
        route = [(0, 1), (1, 2), (2, 3), (3, 4)]
        delay = path_delay_slots(schedule, route)
        assert path_wraps(schedule, route) == (delay - 1) // frame
        assert path_wraps(schedule, route) == 2

    def test_delay_bounded_by_wraps_plus_one_frames(self):
        schedule = schedule_of(6, {(0, 1): (4, 1), (1, 2): (3, 1),
                                   (2, 3): (5, 1)})
        route = [(0, 1), (1, 2), (2, 3)]
        wraps = path_wraps(schedule, route)
        assert path_delay_slots(schedule, route) <= (wraps + 1) * 6


class TestWorstCase:
    def test_adds_one_frame(self):
        schedule = schedule_of(10, {(0, 1): (0, 2)})
        assert worst_case_delay_slots(schedule, [(0, 1)]) == 12


class TestOrderWraps:
    def test_forward_order_no_wraps(self):
        order = TransmissionOrder.from_ranking([(0, 1), (1, 2), (2, 3)])
        assert order_wraps(order, [(0, 1), (1, 2), (2, 3)]) == 0

    def test_reverse_order_wraps_each_hop(self):
        order = TransmissionOrder.from_ranking([(2, 3), (1, 2), (0, 1)])
        assert order_wraps(order, [(0, 1), (1, 2), (2, 3)]) == 2

    def test_empty_route_rejected(self):
        order = TransmissionOrder.from_ranking([(0, 1)])
        with pytest.raises(SchedulingError):
            order_wraps(order, [])


class TestMaxRouteDelay:
    def test_max_over_routes(self):
        schedule = schedule_of(10, {(0, 1): (0, 1), (1, 2): (1, 1),
                                    (5, 6): (0, 1), (6, 7): (9, 1)})
        routes = [[(0, 1), (1, 2)], [(5, 6), (6, 7)]]
        assert max_route_delay(schedule, routes) == 10

    def test_no_routes_rejected(self):
        with pytest.raises(SchedulingError):
            max_route_delay(schedule_of(4, {}), [])
