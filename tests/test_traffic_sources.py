"""Traffic sources."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.net.flows import Flow
from repro.net.packet import Packet
from repro.sim.engine import Simulator
from repro.traffic.sources import CbrSource, OnOffVoipSource, PoissonSource
from repro.traffic.voip import G711, G729


def routed_flow(name="f"):
    return Flow(name, 0, 2, rate_bps=80_000,
                delay_budget_s=0.1).with_route([(0, 1), (1, 2)])


def collector():
    packets = []

    def originate(packet, now):
        packets.append((now, packet))
        return True

    return packets, originate


class TestCbr:
    def test_emits_at_fixed_interval(self, sim):
        packets, originate = collector()
        CbrSource(sim, routed_flow(), originate, packet_bits=800,
                  interval_s=0.02, start_s=0.0)
        sim.run(until=0.1)
        times = [t for t, ____ in packets]
        assert times == pytest.approx([0.0, 0.02, 0.04, 0.06, 0.08, 0.1])

    def test_sequence_numbers_increment(self, sim):
        packets, originate = collector()
        CbrSource(sim, routed_flow(), originate, 800, 0.02)
        sim.run(until=0.1)
        assert [p.seq for ____, p in packets] == list(range(len(packets)))

    def test_packets_carry_route_and_flow(self, sim):
        packets, originate = collector()
        CbrSource(sim, routed_flow("voip3"), originate, 800, 0.02)
        sim.run(until=0.02)
        ____, packet = packets[0]
        assert isinstance(packet, Packet)
        assert packet.flow == "voip3"
        assert packet.route == ((0, 1), (1, 2))

    def test_stop_time_respected(self, sim):
        packets, originate = collector()
        source = CbrSource(sim, routed_flow(), originate, 800, 0.02,
                           stop_s=0.05)
        sim.run(until=1.0)
        assert all(t < 0.05 for t, ____ in packets)
        assert source.sent == len(packets)

    def test_for_codec_matches_packetization(self, sim):
        packets, originate = collector()
        CbrSource.for_codec(sim, routed_flow(), originate, G711)
        sim.run(until=0.1)
        ____, packet = packets[0]
        assert packet.size_bits == G711.packet_bits
        assert len(packets) == 6  # t = 0.0 .. 0.1 at 20 ms

    def test_unrouted_flow_rejected(self, sim):
        flow = Flow("f", 0, 2, rate_bps=1000)
        with pytest.raises(ConfigurationError):
            CbrSource(sim, flow, lambda p, t: True, 800, 0.02)

    def test_invalid_parameters(self, sim):
        with pytest.raises(ConfigurationError):
            CbrSource(sim, routed_flow(), lambda p, t: True, 0, 0.02)
        with pytest.raises(ConfigurationError):
            CbrSource(sim, routed_flow(), lambda p, t: True, 800, 0.0)


class TestPoisson:
    def test_mean_rate_approximately_met(self, sim):
        packets, originate = collector()
        PoissonSource(sim, routed_flow(), originate, packet_bits=800,
                      rate_pps=100.0, rng=np.random.default_rng(7))
        sim.run(until=10.0)
        assert len(packets) == pytest.approx(1000, rel=0.15)

    def test_interarrivals_vary(self, sim):
        packets, originate = collector()
        PoissonSource(sim, routed_flow(), originate, 800, 50.0,
                      np.random.default_rng(7))
        sim.run(until=2.0)
        gaps = {round(b - a, 9) for (a, ____), (b, ____)
                in zip(packets, packets[1:])}
        assert len(gaps) > 10

    def test_invalid_rate(self, sim):
        with pytest.raises(ConfigurationError):
            PoissonSource(sim, routed_flow(), lambda p, t: True, 800, 0.0,
                          np.random.default_rng(0))


class TestOnOff:
    def test_alternates_talk_and_silence(self, sim):
        packets, originate = collector()
        OnOffVoipSource(sim, routed_flow(), originate, G729,
                        np.random.default_rng(11),
                        mean_talk_s=0.5, mean_silence_s=0.5)
        sim.run(until=20.0)
        # activity factor ~0.5: noticeably fewer packets than steady CBR
        steady = 20.0 / G729.packet_interval_s
        assert 0.2 * steady < len(packets) < 0.8 * steady

    def test_silence_gaps_exist(self, sim):
        packets, originate = collector()
        OnOffVoipSource(sim, routed_flow(), originate, G729,
                        np.random.default_rng(11),
                        mean_talk_s=0.3, mean_silence_s=1.0)
        sim.run(until=20.0)
        gaps = [b - a for (a, ____), (b, ____)
                in zip(packets, packets[1:])]
        assert max(gaps) > 5 * G729.packet_interval_s

    def test_invalid_spurts(self, sim):
        with pytest.raises(ConfigurationError):
            OnOffVoipSource(sim, routed_flow(), lambda p, t: True, G729,
                            np.random.default_rng(0), mean_talk_s=0.0)
