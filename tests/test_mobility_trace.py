"""Unit tests for repro.mobility.trace: replayed position timelines."""

import pytest

from repro.errors import ConfigurationError
from repro.mobility.models import ConstantVelocityModel, RandomWaypointModel
from repro.mobility.trace import MobilityTrace


def square_trace():
    return MobilityTrace([
        (0.0, 0, 0.0, 0.0), (10.0, 0, 100.0, 0.0),
        (0.0, 1, 50.0, 50.0), (10.0, 1, 50.0, 50.0),
        (5.0, 2, 10.0, 10.0), (8.0, 2, 40.0, 10.0),
    ])


def test_trace_interpolates_linearly_between_samples():
    trace = square_trace()
    assert trace.position(0, 5.0) == (50.0, 0.0)
    assert trace.position(2, 6.5) == (25.0, 10.0)


def test_trace_nodes_and_horizon():
    trace = square_trace()
    assert trace.nodes == (0, 1, 2)
    assert trace.horizon_s == 10.0
    assert trace.span(2) == (5.0, 8.0)
    with pytest.raises(ConfigurationError):
        trace.span(9)


def test_trace_absence_outside_span_expresses_join_and_leave():
    trace = square_trace()
    assert trace.position(2, 4.9) is None      # joins at t=5
    assert trace.position(2, 8.1) is None      # leaves at t=8
    assert trace.position(2, 5.0) == (10.0, 10.0)
    assert trace.position(9, 1.0) is None


def test_trace_rejects_empty_duplicate_and_negative_samples():
    with pytest.raises(ConfigurationError):
        MobilityTrace([])
    with pytest.raises(ConfigurationError):
        MobilityTrace([(1.0, 0, 0.0, 0.0), (1.0, 0, 5.0, 5.0)])
    with pytest.raises(ConfigurationError):
        MobilityTrace([(-1.0, 0, 0.0, 0.0)])


def test_trace_samples_in_canonical_order():
    trace = square_trace()
    rows = trace.samples()
    assert rows == sorted(rows, key=lambda r: (r[0], r[1]))


@pytest.mark.parametrize("fmt", ["csv", "jsonl"])
def test_trace_round_trips_byte_identically(fmt):
    model = RandomWaypointModel(5, 300.0, 8.0, 20.0, seed=13)
    trace = MobilityTrace.from_model(model, dt=2.5)
    text = trace.dumps(fmt)
    again = MobilityTrace.loads(text, fmt)
    assert again.dumps(fmt) == text
    assert again.samples() == trace.samples()


def test_trace_from_model_matches_model_positions():
    model = ConstantVelocityModel({0: (0.0, 0.0)}, {0: (2.0, 0.0)}, 10.0)
    trace = MobilityTrace.from_model(model, dt=1.0)
    assert trace.position(0, 3.0) == model.position(0, 3.0)
    # linear motion interpolates exactly even between samples
    assert trace.position(0, 3.5) == model.position(0, 3.5)


def test_trace_dump_and_load_follow_the_suffix(tmp_path):
    trace = square_trace()
    for name in ("trace.csv", "trace.jsonl", "trace.ndjson"):
        path = tmp_path / name
        trace.dump(path)
        assert MobilityTrace.load(path).samples() == trace.samples()
    with pytest.raises(ConfigurationError):
        trace.dump(tmp_path / "trace.xml")
    with pytest.raises(ConfigurationError):
        MobilityTrace.load(tmp_path / "trace.xml")


def test_trace_loads_rejects_malformed_input():
    with pytest.raises(ConfigurationError):
        MobilityTrace.loads("a,b\n1,2\n", "csv")
    with pytest.raises(ConfigurationError):
        MobilityTrace.loads("t,node,x,y\n1,zero,3,4\n", "csv")
    with pytest.raises(ConfigurationError):
        MobilityTrace.loads('{"t": 1, "node": 0}\n', "jsonl")
    with pytest.raises(ConfigurationError):
        MobilityTrace.loads("t,node,x,y\n", "yaml")
    with pytest.raises(ConfigurationError):
        MobilityTrace.from_model(
            ConstantVelocityModel({0: (0.0, 0.0)}, {0: (0.0, 0.0)}, 5.0),
            dt=0.0)
