"""Gateway placement utility."""

from repro.net.routing import choose_gateway, gateway_tree
from repro.net.topology import chain_topology, grid_topology, star_topology


def test_chain_center():
    assert choose_gateway(chain_topology(5)) == 2
    # even-length chain: two centers, smallest id wins
    assert choose_gateway(chain_topology(6)) == 2


def test_grid_center():
    assert choose_gateway(grid_topology(3, 3)) == 4


def test_star_hub():
    assert choose_gateway(star_topology(6)) == 0


def test_center_minimizes_tree_depth():
    import networkx as nx

    topology = grid_topology(3, 4)
    best = choose_gateway(topology)

    def depth(gateway):
        tree = gateway_tree(topology, gateway)
        return max(nx.single_source_shortest_path_length(
            topology.graph, gateway).values())

    assert depth(best) == min(depth(n) for n in topology.nodes)
