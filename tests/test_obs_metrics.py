"""Unit tests for repro.obs: registry semantics and determinism."""

import json

import pytest

from repro import obs
from repro.net.flows import Flow
from repro.net.topology import chain_topology


@pytest.fixture
def registry():
    reg = obs.MetricsRegistry()
    previous = obs.set_registry(reg)
    yield reg
    obs.set_registry(previous)


# -- instruments ----------------------------------------------------------

def test_counter_gauge_histogram_timer(registry):
    registry.counter("c").inc()
    registry.counter("c").inc(3)
    registry.gauge("g").set(2.5)
    h = registry.histogram("h", edges=(1, 10))
    for v in (0, 1, 5, 100):
        h.observe(v)
    registry.timer("t").add(0.25)

    snap = registry.snapshot(timings=True)
    assert snap["counters"]["c"] == 4
    assert snap["gauges"]["g"]["value"] == 2.5
    assert snap["gauges"]["g"]["samples"] == 1
    assert snap["histograms"]["h"]["counts"] == [2, 1, 1]
    assert snap["histograms"]["h"]["edges"] == [1, 10]
    assert snap["timings"]["t"]["count"] == 1
    assert snap["timings"]["t"]["total_s"] == pytest.approx(0.25)


def test_instruments_are_cached_per_name(registry):
    assert registry.counter("x") is registry.counter("x")
    assert registry.histogram("h") is registry.histogram("h")


def test_span_records_timer_and_trace(registry):
    events = []

    class Sink:
        def record(self, name, t_s, dur_s, attrs):
            events.append((name, attrs))

    registry.trace_sink = Sink()
    with registry.span("stage", size=3):
        pass
    snap = registry.snapshot(timings=True)
    assert snap["timings"]["stage"]["count"] == 1
    assert events == [("stage", {"size": 3})]


# -- disabled default ------------------------------------------------------

def test_disabled_registry_is_noop_and_shared():
    reg = obs.get_registry()
    assert not reg.enabled
    null = reg.counter("anything")
    assert null is reg.gauge("else") is reg.histogram("h") is reg.timer("t")
    null.inc()
    null.set(1.0)
    null.observe(2.0)
    null.add(0.1)  # all silently ignored
    with reg.span("s"):
        pass
    assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}


def test_use_registry_restores_previous():
    outer = obs.get_registry()
    with obs.use_registry(obs.MetricsRegistry()) as reg:
        assert obs.get_registry() is reg
        obs.counter("inside").inc()
    assert obs.get_registry() is outer
    assert reg.snapshot()["counters"] == {"inside": 1}


# -- snapshots and merging -------------------------------------------------

def test_snapshot_excludes_timings_by_default(registry):
    registry.timer("t").add(1.0)
    registry.counter("c").inc()
    assert "timings" not in registry.snapshot()
    assert "timings" in registry.snapshot(timings=True)


def test_merge_snapshot_accumulates(registry):
    other = obs.MetricsRegistry()
    other.counter("c").inc(2)
    other.gauge("g").set(7.0)
    other.histogram("h", edges=(1,)).observe(0)
    other.timer("t").add(0.5)

    registry.counter("c").inc()
    registry.merge_snapshot(other.snapshot(timings=True))
    registry.merge_snapshot(other.snapshot(timings=True))

    snap = registry.snapshot(timings=True)
    assert snap["counters"]["c"] == 5
    assert snap["gauges"]["g"]["value"] == 7.0
    assert snap["gauges"]["g"]["samples"] == 2
    assert snap["histograms"]["h"]["counts"] == [2, 0]
    assert snap["timings"]["t"]["count"] == 2
    assert snap["timings"]["t"]["total_s"] == pytest.approx(1.0)


def test_merge_snapshot_ignores_none(registry):
    registry.counter("c").inc()
    registry.merge_snapshot(None)
    assert registry.snapshot()["counters"]["c"] == 1


# -- determinism -----------------------------------------------------------

def _scheduling_run() -> str:
    from repro.api import Scenario

    with obs.use_registry(obs.MetricsRegistry()) as reg:
        scenario = Scenario(
            topology=chain_topology(6),
            flows=[Flow("voip0", src=0, dst=5, rate_bps=80_000,
                        delay_budget_s=0.1)])
        scenario.route().schedule()
    return reg.to_json()


def test_metrics_snapshots_are_byte_identical():
    """Identical runs produce byte-identical JSON (no wall-clock leakage)."""
    assert _scheduling_run() == _scheduling_run()


def test_instrumented_counters_cover_the_solver_stack():
    from repro.api import Scenario

    with obs.use_registry(obs.MetricsRegistry()) as reg:
        Scenario(topology=chain_topology(5),
                 flows=[Flow("f", src=0, dst=4,
                             rate_bps=64_000)]).route().schedule()
    counters = reg.snapshot()["counters"]
    assert counters["core.minslots.searches"] == 1
    assert counters["core.minslots.probes"] >= 1
    assert counters["core.ilp.solves"] >= 1
    timings = reg.snapshot(timings=True)["timings"]
    assert "core.minslots.search" in timings
    assert "core.ilp.solve" in timings


def test_write_metrics_json_is_canonical(registry, tmp_path):
    registry.counter("b").inc()
    registry.counter("a").inc()
    registry.timer("t").add(1.0)
    path = tmp_path / "metrics.json"
    obs.write_metrics_json(str(path), registry)
    text = path.read_text()
    snap = json.loads(text)
    assert "timings" not in snap
    assert list(snap["counters"]) == ["a", "b"]
    # canonical form: re-dumping with the same options is a fixed point
    assert text == json.dumps(snap, indent=2, sort_keys=True) + "\n" or \
        text == json.dumps(snap, sort_keys=True,
                           separators=(",", ":")) + "\n"


def test_obs_disabled_does_not_change_results():
    """The instrumentation seam must not perturb the schedule itself."""
    from repro.api import Scenario

    def run():
        scenario = Scenario(
            topology=chain_topology(6),
            flows=[Flow("voip0", src=0, dst=5, rate_bps=80_000,
                        delay_budget_s=0.1)])
        result = scenario.route().schedule()
        return result.slots, result.schedule.to_dict()

    baseline = run()
    with obs.use_registry(obs.MetricsRegistry()):
        observed = run()
    assert observed == baseline


# -- tracing ---------------------------------------------------------------

def test_trace_writer_roundtrip(tmp_path):
    path = tmp_path / "trace.jsonl"
    writer = obs.TraceWriter(str(path))
    with obs.use_registry(obs.MetricsRegistry()) as reg:
        reg.trace_sink = writer
        with reg.span("alpha", k=1):
            with reg.span("beta"):
                pass
    writer.close()
    spans = obs.read_trace(str(path))
    assert [s["name"] for s in spans] == ["beta", "alpha"]
    assert spans[1]["k"] == 1
    assert all(s["dur_s"] >= 0 for s in spans)


def test_format_profile_lists_stages(registry):
    registry.timer("core.ilp.solve").add(0.5)
    registry.timer("core.ilp.solve").add(0.5)
    registry.counter("core.ilp.solves").inc(2)
    text = obs.format_profile(registry)
    assert "core.ilp.solve" in text
    assert "2" in text
