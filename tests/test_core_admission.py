"""Admission controller."""

import pytest

from repro import obs
from repro.core.admission import AdmissionController
from repro.errors import ConfigurationError
from repro.net.flows import Flow
from repro.net.topology import chain_topology, star_topology


def controller(topology=None, frame_slots=16, region=None):
    return AdmissionController(
        topology or chain_topology(5),
        frame_slots=frame_slots,
        frame_duration_s=0.010,
        slot_capacity_bits=2000,
        guaranteed_region_slots=region)


def voip_flow(name, src, dst, rate=80_000, budget=0.1):
    return Flow(name, src, dst, rate_bps=rate, delay_budget_s=budget)


class TestAdmission:
    def test_first_flow_admitted(self):
        ctrl = controller()
        decision = ctrl.try_admit(voip_flow("a", 0, 4))
        assert decision.admitted
        assert ctrl.admitted_count() == 1
        assert ctrl.schedule is not None
        # three mutually conflicting links of the chain at minimum; with the
        # loose 0.1 s budget wraps are allowed, so 3 slots suffice
        assert decision.slots_used >= 3

    def test_tight_budget_forces_pipeline_region(self):
        ctrl = controller()
        # 0.01 s = one frame: zero wraps allowed, so all 4 hops need
        # distinct forward slots
        decision = ctrl.try_admit(voip_flow("a", 0, 4, budget=0.01))
        assert decision.admitted
        assert decision.slots_used >= 4

    def test_admitted_flow_gets_route(self):
        ctrl = controller()
        decision = ctrl.try_admit(voip_flow("a", 0, 2))
        assert decision.flow.is_routed
        assert decision.flow.route == ((0, 1), (1, 2))

    def test_pre_routed_flow_respected(self):
        ctrl = controller()
        flow = voip_flow("a", 0, 2).with_route([(0, 1), (1, 2)])
        assert ctrl.try_admit(flow).admitted

    def test_rejection_preserves_state(self):
        topo = star_topology(3)
        # region of 3 slots; each flow needs 1 slot on its single link and
        # all star links conflict
        ctrl = controller(topology=topo, region=3)
        for i, leaf in enumerate((1, 2, 3)):
            assert ctrl.try_admit(voip_flow(f"f{i}", leaf, 0,
                                            rate=150_000)).admitted
        before = ctrl.slots_used
        decision = ctrl.try_admit(voip_flow("overflow", 1, 2, rate=150_000))
        assert not decision.admitted
        assert ctrl.admitted_count() == 3
        assert ctrl.slots_used == before
        assert "overflow" not in ctrl.admitted

    def test_schedule_meets_all_budgets_after_each_admission(self):
        from repro.core.delay import path_delay_slots

        ctrl = controller(frame_slots=16)
        budget_slots = int(0.1 / ctrl.slot_duration_s)
        for i in range(2):
            decision = ctrl.try_admit(voip_flow(f"f{i}", 0, 4, rate=40_000))
            assert decision.admitted
            for flow in ctrl.admitted:
                delay = path_delay_slots(ctrl.schedule, flow.route)
                assert delay <= budget_slots

    def test_duplicate_name_rejected(self):
        ctrl = controller()
        ctrl.try_admit(voip_flow("a", 0, 2))
        with pytest.raises(ConfigurationError, match="already"):
            ctrl.try_admit(voip_flow("a", 0, 3))

    def test_budget_below_slot_rejected(self):
        ctrl = controller()
        with pytest.raises(ConfigurationError, match="below one slot"):
            ctrl.try_admit(voip_flow("a", 0, 2, budget=1e-5))


class TestRelease:
    def test_release_frees_capacity(self):
        topo = star_topology(3)
        # every star link conflicts with every other; the relayed flow "x"
        # (1 -> hub -> 2) needs two slots, the leaf flows one each
        ctrl = controller(topology=topo, region=4)
        for i, leaf in enumerate((1, 2, 3)):
            assert ctrl.try_admit(
                voip_flow(f"f{i}", leaf, 0, rate=150_000)).admitted
        assert not ctrl.try_admit(
            voip_flow("x", 1, 2, rate=150_000)).admitted  # 3 + 2 > 4
        ctrl.release("f0")
        assert ctrl.try_admit(
            voip_flow("x", 1, 2, rate=150_000)).admitted  # 2 + 2 == 4

    def test_release_last_flow_clears_schedule(self):
        ctrl = controller()
        ctrl.try_admit(voip_flow("a", 0, 2))
        ctrl.release("a")
        assert ctrl.admitted_count() == 0
        assert ctrl.schedule is None
        assert ctrl.slots_used == 0

    def test_release_unknown_rejected(self):
        with obs.use_registry(obs.MetricsRegistry()) as reg:
            with pytest.raises(ConfigurationError,
                               match="no such admitted flow"):
                controller().release("ghost")
        counters = reg.snapshot()["counters"]
        assert counters["core.admission.release_unknown"] == 1

    def test_release_unknown_leaves_state_untouched(self):
        ctrl = controller()
        ctrl.try_admit(voip_flow("f1", 0, 2))
        before = ctrl.schedule.to_dict()
        with pytest.raises(ConfigurationError):
            ctrl.release("ghost")
        assert ctrl.admitted_count() == 1
        assert ctrl.schedule.to_dict() == before


class TestConfiguration:
    def test_invalid_region(self):
        with pytest.raises(ConfigurationError):
            controller(region=0)
        with pytest.raises(ConfigurationError):
            controller(region=17)

    def test_invalid_frame_params(self):
        with pytest.raises(ConfigurationError):
            AdmissionController(chain_topology(3), 16, 0.0, 1000)

    def test_slot_duration(self):
        ctrl = controller(frame_slots=10)
        assert ctrl.slot_duration_s == pytest.approx(0.001)
