"""Experiment harness smoke tests (tiny parameters).

Each experiment runs with scaled-down inputs and must (a) complete, (b)
produce rows matching its headers, and (c) show the qualitative shape the
full benchmark relies on.
"""

import math

import pytest

from repro.analysis import experiments as ex


def assert_well_formed(result):
    assert result.rows, result.experiment
    for row in result.rows:
        assert len(row) == len(result.headers)
    text = result.table()
    assert result.experiment in text


def test_e01_shape():
    result = ex.e01_min_slots(call_counts=(1, 2))
    assert_well_formed(result)
    slots = [row[2] for row in result.rows]
    assert slots[0] <= slots[1]
    # ILP never needs fewer slots than the lower bound
    for row in result.rows:
        assert row[2] >= row[1]


def test_e02_shape():
    result = ex.e02_delay_vs_hops(hop_counts=(2, 4, 6))
    assert_well_formed(result)
    for row in result.rows:
        hops, ilp_ms, tree_ms, naive_ms, adversarial_ms = row[:5]
        assert ilp_ms <= tree_ms + 1e-9
        assert tree_ms <= adversarial_ms
        assert row[5] == 0  # ilp wraps
    # adversarial grows with hops, ilp stays within one frame (10 ms)
    assert result.rows[-1][4] > result.rows[0][4]
    assert all(row[1] <= 10.0 for row in result.rows)


def test_e03_shape():
    result = ex.e03_delay_vs_frame(frame_durations_ms=(4, 8, 16))
    assert_well_formed(result)
    good = [row[1] for row in result.rows]
    bad = [row[2] for row in result.rows]
    # linear in frame duration
    assert good[1] == pytest.approx(2 * good[0])
    assert bad[2] == pytest.approx(2 * bad[1])
    assert all(b > g for g, b in zip(good, bad))


def test_e04_shape():
    result = ex.e04_overhead(drift_ppms=(10, 50),
                             resync_intervals_s=(0.1, 10.0))
    assert_well_formed(result)
    by_key = {(row[0], row[1]): row for row in result.rows}
    # guard grows with drift and interval
    assert by_key[(50, 10.0)][2] > by_key[(10, 0.1)][2]
    # capacity shrinks correspondingly
    assert by_key[(50, 10.0)][4] < by_key[(10, 0.1)][4]


def test_e07_shape():
    result = ex.e07_ordering_compare()
    assert_well_formed(result)
    for row in result.rows:
        name, flows, ilp, tree, greedy, random_ = row
        assert ilp == 0
        if tree is not None:
            assert tree == 0


def test_e09_shape():
    result = ex.e09_goodput_efficiency(slot_durations_us=(400, 800, 2000))
    assert_well_formed(result)
    efficiency = [row[3] for row in result.rows]
    assert efficiency == sorted(efficiency)
    assert all(0 <= e < 1 for e in efficiency)


def test_e11_shape():
    result = ex.e11_spatial_reuse(chain_lengths=(4, 8, 12))
    assert_well_formed(result)
    slots_2hop = [row[3] for row in result.rows]
    links = [row[1] for row in result.rows]
    # slots saturate while links keep growing
    assert slots_2hop[-1] == slots_2hop[-2]
    assert links[-1] > links[0]
    # 1-hop model needs fewer slots than 2-hop
    for row in result.rows:
        assert row[2] <= row[3]
    # utilization (reuse) grows past 1
    assert result.rows[-1][4] > 1.0


@pytest.mark.slow
def test_e05_shape():
    result = ex.e05_voip_capacity(call_counts=(2, 8), duration_s=1.0)
    assert_well_formed(result)
    light, heavy = result.rows
    # at light load both stacks carry everything
    assert light[2] == light[0]
    # at heavy load TDMA's admitted calls all meet QoS; DCF's mostly fail
    assert heavy[2] == heavy[1]
    assert heavy[3] < heavy[0]


@pytest.mark.slow
def test_e06_shape():
    result = ex.e06_delay_cdf(num_calls=4, duration_s=1.5)
    assert_well_formed(result)
    tdma = {row[0]: row[1] for row in result.rows}
    # hard cap: TDMA's max barely exceeds its median (bounded service)
    assert tdma["max"] < 3 * tdma["p50"] + 1.0


@pytest.mark.slow
def test_e08_shape():
    result = ex.e08_sync_error(duration_s=2.5)
    assert_well_formed(result)
    rows = {row[0]: row for row in result.rows}
    assert rows["sync_on"][1] < rows["sync_off"][1]


@pytest.mark.slow
def test_e10_shape():
    result = ex.e10_solver_scaling(grid_sizes=((2, 2), (3, 3)))
    assert_well_formed(result)
    small, large = result.rows
    assert large[2] >= small[2]  # variables grow with the mesh


@pytest.mark.slow
def test_e12_shape():
    result = ex.e12_voip_mos(call_counts=(8,), duration_s=1.0)
    assert_well_formed(result)
    row = result.rows[0]
    assert row[2] > row[3]  # TDMA worst MOS beats DCF worst MOS past knee


@pytest.mark.slow
def test_e13_shape():
    result = ex.e13_channel_errors(error_rates=(0.0, 0.05), duration_s=1.0)
    assert_well_formed(result)
    clean, lossy = result.rows
    assert clean[1] == 0.0
    assert lossy[1] > clean[1]          # TDMA loss grows with channel error
    assert lossy[2] < lossy[1]          # DCF's ARQ absorbs most of it
    assert lossy[5] >= clean[5]         # ...by retrying more


def test_e14_shape():
    result = ex.e14_distributed_vs_centralized()
    assert_well_formed(result)
    for row in result.rows:
        ____, links, central, makespan, served, messages, ____ = row
        assert served == f"{links}/{links}"
        assert messages == 3 * links
        assert makespan <= 2 * central


@pytest.mark.slow
def test_e15_shape():
    result = ex.e15_control_plane(duration_s=1.5)
    assert_well_formed(result)
    for row in result.rows:
        assert row[5] == 0  # no control collisions under either plane
        assert row[6] == 0  # no VoIP loss


def test_e16_shape():
    result = ex.e16_two_class(call_counts=(0, 2, 4))
    assert_well_formed(result)
    fractions = [row[4] for row in result.rows]
    assert fractions == sorted(fractions, reverse=True)


def test_e16_matches_pre_qos_implementation():
    """The repro.qos migration must be a pure refactor: identical rows to
    the seed implementation that fed schedule_two_classes directly."""
    from repro.analysis.scenarios import (delay_constraints_for,
                                          make_voip_flows)
    from repro.core.besteffort import schedule_two_classes
    from repro.core.engine import SolverEngine
    from repro.mesh16.frame import default_frame_config
    from repro.net.flows import Flow, FlowSet
    from repro.net.routing import route_all
    from repro.net.topology import grid_topology
    from repro.sim.random import RngRegistry

    call_counts = (0, 2, 4)
    topology = grid_topology(3, 3)
    frame = default_frame_config()
    bulk = route_all(topology, FlowSet([
        Flow("bulk0", 6, 2, rate_bps=800_000),
        Flow("bulk1", 2, 6, rate_bps=800_000),
    ]))
    be_demands = bulk.link_demands(frame.frame_duration_s,
                                   frame.data_slot_capacity_bits)
    solver = SolverEngine()
    legacy_rows = []
    for count in call_counts:
        rngs = RngRegistry(seed=41)
        voip = make_voip_flows(topology, count, rngs, gateway=0,
                               delay_budget_s=0.1)
        g_demands = voip.link_demands(frame.frame_duration_s,
                                      frame.data_slot_capacity_bits)
        conflicts = solver.conflict_index(
            topology, hops=2,
            links=set(g_demands) | set(be_demands)).graph
        two = schedule_two_classes(
            conflicts, g_demands, be_demands, frame.data_slots,
            delay_constraints=delay_constraints_for(voip, frame))
        legacy_rows.append([
            count, two.guaranteed_region, two.best_effort_region,
            sum(two.best_effort_grants.values()),
            two.grant_fraction(be_demands)])

    assert ex.e16_two_class(call_counts=call_counts).rows == legacy_rows


def test_e17_shape():
    result = ex.e17_churn(churn_rates=(4.0,), horizon_s=60.0)
    assert_well_formed(result)
    for row in result.rows:
        assert row[1] > 0  # churn actually happened
        assert row[4] < row[5]  # repair window beats re-solve window
        assert row[-2] and row[-1]  # conflict-free + guarantees hold


def test_registry_lists_all():
    assert set(ex.ALL_EXPERIMENTS) == {f"E{i}" for i in range(1, 24)}
