"""Flow model and slot-demand arithmetic."""

import pytest

from repro.errors import ConfigurationError
from repro.net.flows import Flow, FlowSet


def make_flow(**overrides):
    defaults = dict(name="f", src=0, dst=3, rate_bps=64_000,
                    delay_budget_s=0.1)
    defaults.update(overrides)
    return Flow(**defaults)


class TestFlow:
    def test_basic_fields(self):
        flow = make_flow()
        assert flow.name == "f"
        assert not flow.is_routed
        assert flow.hops == 0

    def test_src_equals_dst_rejected(self):
        with pytest.raises(ConfigurationError):
            make_flow(src=2, dst=2)

    def test_nonpositive_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            make_flow(rate_bps=0)

    def test_nonpositive_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            make_flow(delay_budget_s=0.0)

    def test_best_effort_flow_has_no_budget(self):
        flow = make_flow(delay_budget_s=None)
        assert flow.delay_budget_s is None

    def test_with_route(self):
        flow = make_flow().with_route([(0, 1), (1, 2), (2, 3)])
        assert flow.is_routed
        assert flow.hops == 3

    def test_route_endpoint_mismatch_rejected(self):
        with pytest.raises(ConfigurationError, match="endpoints"):
            make_flow().with_route([(1, 2), (2, 3)])

    def test_route_discontinuity_rejected(self):
        with pytest.raises(ConfigurationError, match="contiguous"):
            make_flow().with_route([(0, 1), (2, 3)])

    def test_slots_per_frame_ceils(self):
        flow = make_flow(rate_bps=64_000)
        # 64 kb/s over a 10 ms frame = 640 bits; one 1000-bit slot suffices
        assert flow.slots_per_frame(0.010, 1000) == 1
        # 640 bits into 500-bit slots needs 2
        assert flow.slots_per_frame(0.010, 500) == 2

    def test_slots_per_frame_minimum_one(self):
        flow = make_flow(rate_bps=1_000)
        assert flow.slots_per_frame(0.010, 100_000) == 1

    def test_slots_per_frame_validates_inputs(self):
        flow = make_flow()
        with pytest.raises(ConfigurationError):
            flow.slots_per_frame(0.0, 1000)
        with pytest.raises(ConfigurationError):
            flow.slots_per_frame(0.01, 0)


class TestFlowSet:
    def test_add_and_iterate_in_order(self):
        flows = FlowSet([make_flow(name="a"), make_flow(name="b")])
        assert flows.names() == ["a", "b"]
        assert len(flows) == 2

    def test_duplicate_name_rejected(self):
        flows = FlowSet([make_flow(name="a")])
        with pytest.raises(ConfigurationError, match="duplicate"):
            flows.add(make_flow(name="a"))

    def test_get_and_contains(self):
        flows = FlowSet([make_flow(name="a")])
        assert "a" in flows
        assert flows.get("a").name == "a"
        with pytest.raises(ConfigurationError):
            flows.get("zzz")

    def test_remove(self):
        flows = FlowSet([make_flow(name="a")])
        removed = flows.remove("a")
        assert removed.name == "a"
        assert "a" not in flows
        with pytest.raises(ConfigurationError):
            flows.remove("a")

    def test_replace(self):
        flows = FlowSet([make_flow(name="a")])
        flows.replace(make_flow(name="a", rate_bps=128_000))
        assert flows.get("a").rate_bps == 128_000
        with pytest.raises(ConfigurationError):
            flows.replace(make_flow(name="new"))

    def test_guaranteed_vs_best_effort_split(self):
        flows = FlowSet([
            make_flow(name="g"),
            make_flow(name="be", delay_budget_s=None),
        ])
        assert [f.name for f in flows.guaranteed()] == ["g"]
        assert [f.name for f in flows.best_effort()] == ["be"]

    def test_link_demands_aggregates_overlapping_routes(self):
        f1 = make_flow(name="a", rate_bps=64_000).with_route(
            [(0, 1), (1, 2), (2, 3)])
        f2 = make_flow(name="b", src=1, rate_bps=64_000).with_route(
            [(1, 2), (2, 3)])
        demands = FlowSet([f1, f2]).link_demands(0.010, 1000)
        assert demands[(0, 1)] == 1
        assert demands[(1, 2)] == 2
        assert demands[(2, 3)] == 2

    def test_link_demands_requires_routes(self):
        flows = FlowSet([make_flow()])
        with pytest.raises(ConfigurationError, match="unrouted"):
            flows.link_demands(0.010, 1000)

    def test_total_rate(self):
        flows = FlowSet([make_flow(name="a", rate_bps=10),
                         make_flow(name="b", rate_bps=20)])
        assert flows.total_rate_bps() == pytest.approx(30)
