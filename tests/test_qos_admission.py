"""Class-aware admission control and repair-engine shed ordering."""

import pytest

from repro import obs
from repro.core.repair import RepairEngine
from repro.errors import ConfigurationError
from repro.faults import FaultEvent
from repro.mesh16.frame import default_frame_config
from repro.net.flows import Flow
from repro.net.topology import chain_topology
from repro.qos import (
    QosAdmissionController,
    ServiceClass,
    ServiceFlow,
    ServiceFlowSet,
    TrafficContract,
    class_shed_key,
)

FRAME = default_frame_config()
SLOT_RATE = FRAME.data_slot_capacity_bits / FRAME.frame_duration_s


def ugs(name, src, slots=2):
    rate = slots * SLOT_RATE
    return ServiceFlow(name, src, 0, ServiceClass.UGS, TrafficContract(
        min_reserved_rate_bps=rate, max_sustained_rate_bps=rate,
        max_latency_s=0.05))


def rtps(name, src, slots=2):
    return ServiceFlow(name, src, 0, ServiceClass.RTPS, TrafficContract(
        min_reserved_rate_bps=slots * SLOT_RATE, max_latency_s=0.1))


def bulk(name, src, slots=2):
    return ServiceFlow(name, src, 0, ServiceClass.BE, TrafficContract(
        max_sustained_rate_bps=slots * SLOT_RATE))


def controller(region=4):
    # chain of 3: a flow from node 2 crosses two mutually-conflicting
    # links, so a 2-slot reservation consumes 4 guaranteed slots
    return QosAdmissionController(chain_topology(3), FRAME,
                                  guaranteed_region_slots=region)


class TestBestEffort:
    def test_always_admitted_never_guaranteed(self):
        ctl = controller(region=1)  # no guaranteed headroom at all
        decision = ctl.request(bulk("b0", 2, slots=8))
        assert decision.admitted
        assert not decision.guaranteed
        assert "not guaranteed" in decision.reason
        assert ctl.slots_used == 0  # BE reserves nothing
        assert ctl.admitted_count(ServiceClass.BE) == 1

    def test_be_admission_counted(self):
        with obs.use_registry(obs.MetricsRegistry()) as reg:
            controller().request(bulk("b0", 1))
        assert reg.snapshot()["counters"]["qos.admission.admitted.BE"] == 1


class TestGuaranteed:
    def test_admit_within_region(self):
        ctl = controller(region=4)
        decision = ctl.request(ugs("u0", 2))
        assert decision.admitted and decision.guaranteed
        assert decision.slots_used == 4
        assert decision.flow.is_routed
        assert decision.schedule is not None

    def test_reject_beyond_region(self):
        ctl = controller(region=4)
        assert ctl.request(ugs("u0", 2)).admitted
        with obs.use_registry(obs.MetricsRegistry()) as reg:
            decision = ctl.request(ugs("u1", 2))
        assert not decision.admitted
        assert "guaranteed slots" in decision.reason
        assert ctl.admitted_count() == 1
        assert reg.snapshot()["counters"]["qos.admission.rejected.UGS"] == 1

    def test_release_then_readmit(self):
        # acceptance criterion: a UGS flow the min-slots search cannot
        # carry is provably rejected, then admitted after a release
        ctl = controller(region=4)
        assert ctl.request(ugs("u0", 2)).admitted
        assert not ctl.request(ugs("u1", 2)).admitted
        ctl.release("u0")
        assert ctl.slots_used == 0
        again = ctl.request(ugs("u1", 2))
        assert again.admitted
        assert again.slots_used == 4

    def test_rtps_checked_against_min_slots(self):
        ctl = controller(region=4)
        assert ctl.request(rtps("v0", 2)).admitted
        assert not ctl.request(rtps("v1", 2)).admitted

    def test_duplicate_request_rejected(self):
        ctl = controller()
        ctl.request(ugs("u0", 1))
        with pytest.raises(ConfigurationError, match="already admitted"):
            ctl.request(ugs("u0", 1))


class TestParking:
    def test_park_on_reject_and_readmit(self):
        ctl = controller(region=4)
        ctl.request(ugs("u0", 2))
        decision = ctl.request(ugs("u1", 2), park_on_reject=True)
        assert not decision.admitted
        assert "u1" in ctl.parked
        ctl.release("u0")
        outcomes = ctl.readmit_parked()
        assert [d.flow.name for d in outcomes] == ["u1"]
        assert outcomes[0].admitted
        assert "u1" not in ctl.parked
        assert "u1" in ctl.service_flows

    def test_readmit_keeps_infeasible_flows_parked(self):
        ctl = controller(region=4)
        ctl.request(ugs("u0", 2))
        ctl.request(ugs("u1", 2), park_on_reject=True)
        outcomes = ctl.readmit_parked()  # u0 still holds the region
        assert not outcomes[0].admitted
        assert "u1" in ctl.parked

    def test_release_with_park_retains_definition(self):
        ctl = controller()
        ctl.request(ugs("u0", 1))
        ctl.release("u0", park=True)
        assert "u0" in ctl.parked
        assert ctl.readmit_parked()[0].admitted


class TestReleaseUnknown:
    def test_release_unknown_raises_and_counts(self):
        ctl = controller()
        with obs.use_registry(obs.MetricsRegistry()) as reg:
            with pytest.raises(ConfigurationError,
                               match="no such service flow"):
                ctl.release("ghost")
        counters = reg.snapshot()["counters"]
        assert counters["qos.admission.release_unknown"] == 1


class TestShedOrder:
    def test_key_ranks_be_above_guaranteed(self):
        flows = ServiceFlowSet([ugs("u0", 1), bulk("b0", 1), rtps("v0", 1)])
        key = class_shed_key(flows, {"u0": 0, "b0": 1, "v0": 2})
        ordered = sorted(["b0", "v0", "u0"], key=key)
        assert ordered == ["u0", "v0", "b0"]  # pop() sheds b0 first
        # unknown names shed like best effort
        assert key("mystery")[0] == key("b0")[0]

    def test_repair_engine_sheds_best_effort_first(self, grid33):
        # both flows fit via the short route 2-1-0; killing link (1, 0)
        # forces the long detour, where only one of them fits -- the
        # class-aware key must sacrifice the (newer-installed) bulk flow's
        # older sibling: without the key, newest-first would shed "voip"
        service = ServiceFlowSet([bulk("bulk", 2, slots=4),
                                  ugs("voip", 2, slots=4)])
        engine = RepairEngine(
            grid33, FRAME,
            shed_key=class_shed_key(service, {"bulk": 0, "voip": 1}))
        engine.install([
            Flow("bulk", src=2, dst=0, rate_bps=4 * SLOT_RATE),
            Flow("voip", src=2, dst=0, rate_bps=4 * SLOT_RATE,
                 delay_budget_s=0.1),
        ])
        outcome = engine.apply(FaultEvent(1.0, "link_down", link=(0, 1)))
        assert outcome.strategy == "resolve"
        assert "bulk" in outcome.parked
        assert [f.name for f in engine.carried_flows] == ["voip"]

    def test_repair_engine_default_sheds_newest_first(self, grid33):
        engine = RepairEngine(grid33, FRAME)
        engine.install([
            Flow("bulk", src=2, dst=0, rate_bps=4 * SLOT_RATE),
            Flow("voip", src=2, dst=0, rate_bps=4 * SLOT_RATE,
                 delay_budget_s=0.1),
        ])
        outcome = engine.apply(FaultEvent(1.0, "link_down", link=(0, 1)))
        assert "voip" in outcome.parked
        assert [f.name for f in engine.carried_flows] == ["bulk"]

    def test_controller_exports_its_own_key(self):
        ctl = controller(region=8)
        ctl.request(bulk("b0", 1))
        ctl.request(ugs("u0", 1))
        key = ctl.shed_key()
        assert sorted(["b0", "u0"], key=key) == ["u0", "b0"]
