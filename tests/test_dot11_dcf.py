"""802.11 DCF MAC behaviour."""

import pytest

from repro.dot11.dcf import DcfMac
from repro.dot11.params import DOT11B_PARAMS
from repro.phy.channel import BroadcastChannel
from repro.sim.engine import Simulator
from repro.sim.random import RngRegistry
from repro.sim.trace import Trace
from repro.net.topology import chain_topology, from_edges


def build_dcf(topology, seed=5):
    sim = Simulator()
    trace = Trace()
    channel = BroadcastChannel(sim, topology, DOT11B_PARAMS.phy, trace)
    rngs = RngRegistry(seed=seed)
    delivered = []

    def deliver(node, payload):
        delivered.append((sim.now, node, payload))

    macs = {node: DcfMac(sim, channel, node, DOT11B_PARAMS,
                         rngs.stream(f"dcf/{node}"), deliver, trace)
            for node in topology.nodes}
    return sim, macs, delivered, trace


class TestUnicast:
    def test_single_frame_delivered_and_acked(self):
        topo = chain_topology(2)
        sim, macs, delivered, trace = build_dcf(topo)
        assert macs[0].send(1, "hello", 800)
        sim.run(until=0.1)
        assert [(n, p) for ____, n, p in delivered] == [(1, "hello")]
        # data + ack on air
        assert trace.count("phy.tx") == 2
        assert macs[0].queue_length == 0

    def test_many_frames_fifo(self):
        topo = chain_topology(2)
        sim, macs, delivered, ____ = build_dcf(topo)
        for i in range(10):
            macs[0].send(1, f"p{i}", 800)
        sim.run(until=1.0)
        assert [p for ____, ____, p in delivered] == [f"p{i}"
                                                      for i in range(10)]

    def test_two_contenders_both_deliver(self):
        # 0 and 2 both neighbours of 1, hidden from each other -- retries
        # must eventually push everything through at this light load
        topo = chain_topology(3)
        sim, macs, delivered, ____ = build_dcf(topo)
        macs[0].send(1, "from0", 800)
        macs[2].send(1, "from2", 800)
        sim.run(until=1.0)
        payloads = {p for ____, ____, p in delivered}
        assert payloads == {"from0", "from2"}

    def test_queue_capacity_enforced(self):
        topo = chain_topology(2)
        sim, macs, ____, trace = build_dcf(topo)
        capacity = DOT11B_PARAMS.queue_capacity
        results = [macs[0].send(1, i, 800) for i in range(capacity + 5)]
        assert results.count(False) == 5
        assert trace.count("mac.queue_drop") == 5

    def test_no_duplicate_delivery_when_ack_lost(self):
        # force an ACK collision: 2 sends to 1 while 1's ACK to 0 is on
        # air; node 0 retries, node 1 must dedup the retransmission
        topo = chain_topology(3)
        sim, macs, delivered, trace = build_dcf(topo)
        macs[0].send(1, "x", 8000)
        sim.run(until=5.0)
        deliveries = [p for ____, ____, p in delivered]
        assert deliveries.count("x") == 1


class TestBroadcast:
    def test_broadcast_reaches_all_neighbors(self):
        topo = from_edges([(0, 1), (0, 2), (0, 3)])
        sim, macs, delivered, trace = build_dcf(topo)
        macs[0].send(None, "bcast", 800)
        sim.run(until=0.1)
        receivers = {n for ____, n, ____ in delivered}
        assert receivers == {1, 2, 3}
        # no ACKs for broadcast
        assert trace.count("phy.tx") == 1

    def test_broadcast_not_retried(self):
        topo = chain_topology(2)
        sim, macs, ____, trace = build_dcf(topo)
        macs[0].send(None, "b", 800)
        sim.run(until=0.5)
        assert trace.count("mac.tx_data") == 1
        assert trace.count("mac.retry") == 0


class TestRetries:
    def test_unreachable_destination_dropped_after_retry_limit(self):
        # destination 5 is not a neighbour of 0: no ACK ever comes
        topo = chain_topology(2)
        sim, macs, ____, trace = build_dcf(topo)
        macs[0].send(5, "lost", 800)
        sim.run(until=5.0)
        assert trace.count("mac.retry") == DOT11B_PARAMS.retry_limit
        assert trace.count("mac.drop") == 1
        # MAC recovered: queue empty, can send again
        assert macs[0].queue_length == 0

    def test_drop_frees_queue_for_next_frame(self):
        topo = chain_topology(2)
        sim, macs, delivered, ____ = build_dcf(topo)
        macs[0].send(5, "doomed", 800)
        macs[0].send(1, "good", 800)
        sim.run(until=5.0)
        assert [p for ____, ____, p in delivered] == ["good"]


class TestCarrierSense:
    def test_defers_to_ongoing_transmission(self):
        topo = chain_topology(3)
        sim, macs, ____, trace = build_dcf(topo)
        macs[0].send(1, "first", 12000)   # long frame
        sim.run(until=0.0005)             # mid-flight
        macs[1].send(2, "second", 800)    # 1 hears 0's tx and must wait
        sim.run(until=0.2)
        tx_times = trace.times("phy.tx")
        # second data tx starts after the first ends (plus SIFS/ACK time)
        first_end = tx_times[0] + DOT11B_PARAMS.phy.airtime(12000 + 34 * 8)
        later = [t for t in tx_times[1:] if t >= first_end - 1e-9]
        assert later, "node 1 must defer until node 0 finishes"

    def test_backoff_spreads_simultaneous_contenders(self):
        # all three in radio range: no collisions expected thanks to CSMA
        topo = from_edges([(0, 1), (1, 2), (0, 2)])
        sim, macs, delivered, trace = build_dcf(topo)
        macs[0].send(2, "a", 800)
        macs[1].send(2, "b", 800)
        sim.run(until=1.0)
        assert {p for ____, ____, p in delivered} == {"a", "b"}
