"""Slot-level ARQ extension of the TDMA overlay."""

import numpy as np
import pytest

from repro.core.schedule import Schedule, SlotBlock
from repro.errors import ConfigurationError
from repro.mesh16.frame import MeshFrameConfig, default_frame_config
from repro.mesh16.network import ControlPlane
from repro.net.packet import Packet
from repro.overlay.emulation import TdmaOverlay
from repro.overlay.sync import SyncConfig, SyncDaemon
from repro.phy.channel import BroadcastChannel
from repro.sim.clock import DriftingClock
from repro.sim.engine import Simulator
from repro.sim.random import RngRegistry
from repro.sim.trace import Trace
from repro.net.topology import chain_topology


def build(topology, schedule, arq=True, error_rate=0.0, per_link=None,
          seed=21, retry_limit=3):
    sim = Simulator()
    trace = Trace(capacity=100_000)
    # ARQ pays the preamble twice per slot: use coarser (8) data slots so a
    # fragment + SIFS + micro-ACK comfortably fit
    config = default_frame_config(data_slots=8)
    channel = BroadcastChannel(sim, topology, config.phy, trace)
    rngs = RngRegistry(seed=seed)
    if error_rate or per_link:
        channel.set_error_model(rngs.stream("err"), error_rate, per_link)
    clocks, daemons = {}, {}
    for node in topology.nodes:
        clocks[node] = DriftingClock()
        daemons[node] = SyncDaemon(node, 0, clocks[node], SyncConfig(),
                                   rngs.stream(f"s{node}"), trace)
    delivered = []
    overlay = TdmaOverlay(
        sim, topology, channel, config, ControlPlane(topology, 0, config),
        schedule, clocks, daemons,
        on_packet=lambda n, p: delivered.append((sim.now, n, p)),
        trace=trace, arq=arq, arq_retry_limit=retry_limit)
    overlay.start()
    return sim, overlay, delivered, trace, config


def packet(route, bits=600, seq=0):
    return Packet(flow="f", seq=seq, size_bits=bits, created_s=0.0,
                  route=tuple(route))


class TestCleanChannel:
    def test_delivery_unchanged_without_errors(self):
        topo = chain_topology(2)
        schedule = Schedule(8, {(0, 1): SlotBlock(0, 1)})
        sim, overlay, delivered, trace, config = build(topo, schedule)
        for seq in range(5):
            overlay.transmit(0, packet([(0, 1)], seq=seq))
        sim.run(until=0.1)
        assert len(delivered) == 5
        assert trace.count("tdma.arq_retx") == 0
        # every fragment was micro-ACKed
        assert trace.count("tdma.arq_ack") == 5

    def test_arq_reduces_fragment_capacity(self):
        topo = chain_topology(2)
        schedule = Schedule(8, {(0, 1): SlotBlock(0, 1)})
        ____, with_arq, ____, ____, config = build(topo, schedule, arq=True)
        ____, without, ____, ____, ____ = build(topo, schedule, arq=False)
        assert with_arq.fragment_capacity_bits < without.fragment_capacity_bits
        assert with_arq.fragment_capacity_bits > 0

    def test_ack_does_not_collide_with_spatially_reused_slot(self):
        # (0,1) and (5,6) share slot 0 on a long chain; their micro-ACKs
        # (from 1 and 6) are as far apart as the data and must not corrupt
        topo = chain_topology(8)
        schedule = Schedule(8, {(0, 1): SlotBlock(0, 1),
                                (5, 6): SlotBlock(0, 1)})
        sim, overlay, delivered, trace, ____ = build(topo, schedule)
        for seq in range(10):
            overlay.transmit(0, packet([(0, 1)], seq=seq))
            overlay.transmit(5, packet([(5, 6)], seq=seq))
        sim.run(until=0.3)
        assert len(delivered) == 20
        assert trace.count("tdma.rx_corrupt") == 0


class TestLossRecovery:
    def test_retransmission_recovers_lost_fragment(self):
        topo = chain_topology(2)
        schedule = Schedule(8, {(0, 1): SlotBlock(0, 1)})
        sim, overlay, delivered, trace, ____ = build(
            topo, schedule, per_link={(0, 1): 0.3}, retry_limit=8)
        for seq in range(40):
            overlay.transmit(0, packet([(0, 1)], seq=seq))
        sim.run(until=2.0)
        assert len(delivered) == 40          # everything recovered
        assert trace.count("tdma.arq_retx") > 0

    def test_no_arq_loses_packets_on_same_channel(self):
        topo = chain_topology(2)
        schedule = Schedule(8, {(0, 1): SlotBlock(0, 1)})
        sim, overlay, delivered, ____, ____ = build(
            topo, schedule, arq=False, per_link={(0, 1): 0.3})
        for seq in range(40):
            overlay.transmit(0, packet([(0, 1)], seq=seq))
        sim.run(until=2.0)
        assert len(delivered) < 40

    def test_no_duplicate_deliveries_when_ack_lost(self):
        # errors on the reverse direction kill ACKs but not data: the
        # sender retransmits, the receiver must dedup
        topo = chain_topology(2)
        schedule = Schedule(8, {(0, 1): SlotBlock(0, 1)})
        sim, overlay, delivered, trace, ____ = build(
            topo, schedule, per_link={(1, 0): 0.5}, retry_limit=8)
        for seq in range(20):
            overlay.transmit(0, packet([(0, 1)], seq=seq))
        sim.run(until=2.0)
        seqs = [p.seq for ____, ____, p in delivered]
        assert sorted(seqs) == sorted(set(seqs))  # no dupes
        assert len(seqs) == 20
        assert trace.count("tdma.arq_retx") > 0

    def test_retry_limit_drops_then_moves_on(self):
        topo = chain_topology(2)
        schedule = Schedule(8, {(0, 1): SlotBlock(0, 1)})
        sim, overlay, delivered, trace, ____ = build(
            topo, schedule, per_link={(0, 1): 0.97}, retry_limit=2,
            seed=3)
        for seq in range(6):
            overlay.transmit(0, packet([(0, 1)], seq=seq))
        sim.run(until=3.0)
        assert trace.count("tdma.arq_drop") > 0
        # the queue kept draining despite the drops
        assert overlay.nodes[0].queued_fragments() == 0


def test_slot_too_short_for_arq_rejected():
    topo = chain_topology(2)
    # 40 slots of ~210 us cannot fit data + SIFS + ACK on 802.11b
    from repro.phy.radio import DOT11B_11M
    from repro.units import MS, US
    with pytest.raises(ConfigurationError):
        config = MeshFrameConfig(frame_duration_s=10 * MS, control_slots=0,
                                 control_slot_s=0.0, data_slots=23,
                                 guard_s=60 * US, phy=DOT11B_11M)
        schedule = Schedule(23)
        build_cfg_overlay(topo, config, schedule)


def build_cfg_overlay(topology, config, schedule):
    sim = Simulator()
    channel = BroadcastChannel(sim, topology, config.phy)
    rngs = RngRegistry(seed=0)
    clocks = {n: DriftingClock() for n in topology.nodes}
    daemons = {n: SyncDaemon(n, 0, clocks[n], SyncConfig(),
                             rngs.stream(f"s{n}")) for n in topology.nodes}
    return TdmaOverlay(sim, topology, channel, config,
                       ControlPlane(topology, 0, config), schedule, clocks,
                       daemons, on_packet=lambda n, p: None, arq=True)
