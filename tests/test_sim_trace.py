"""Trace recording."""

from repro.sim.trace import Trace


def test_emit_and_count():
    trace = Trace()
    trace.emit(1.0, "mac.tx", node=3)
    trace.emit(2.0, "mac.tx", node=4)
    trace.emit(3.0, "mac.rx")
    assert trace.count("mac.tx") == 2
    assert trace.count("mac.rx") == 1
    assert trace.count("nothing") == 0


def test_records_filtered_by_category():
    trace = Trace()
    trace.emit(1.0, "a", value=1)
    trace.emit(2.0, "b", value=2)
    trace.emit(3.0, "a", value=3)
    values = [r["value"] for r in trace.records("a")]
    assert values == [1, 3]


def test_record_field_access():
    trace = Trace()
    trace.emit(1.0, "x", foo="bar")
    record = trace.last()
    assert record.time == 1.0
    assert record.category == "x"
    assert record["foo"] == "bar"


def test_last_with_category():
    trace = Trace()
    trace.emit(1.0, "a", value=1)
    trace.emit(2.0, "b", value=2)
    assert trace.last("a")["value"] == 1
    assert trace.last("b")["value"] == 2
    assert trace.last("c") is None


def test_capacity_bounds_records_but_not_counts():
    trace = Trace(capacity=3)
    for i in range(10):
        trace.emit(float(i), "e", index=i)
    assert len(trace) == 3
    assert trace.count("e") == 10
    assert [r["index"] for r in trace.records("e")] == [7, 8, 9]


def test_disabled_trace_is_noop():
    trace = Trace(enabled=False)
    trace.emit(1.0, "x")
    assert len(trace) == 0
    assert trace.count("x") == 0


def test_categories_sorted():
    trace = Trace()
    trace.emit(1.0, "zeta")
    trace.emit(1.0, "alpha")
    assert trace.categories() == ["alpha", "zeta"]


def test_times():
    trace = Trace()
    trace.emit(1.0, "a")
    trace.emit(2.5, "a")
    trace.emit(2.7, "b")
    assert trace.times("a") == [1.0, 2.5]


def test_extend_counts():
    trace = Trace()
    trace.emit(1.0, "a")
    trace.extend_counts([("a", 5), ("b", 2)])
    assert trace.count("a") == 6
    assert trace.count("b") == 2
