"""In-band schedule distribution (MSH-DSCH flooding)."""

from dataclasses import replace

import pytest

from repro import obs
from repro.core.conflict import conflict_graph
from repro.core.schedule import Schedule, SlotBlock
from repro.resilience import ResilienceConfig
from repro.errors import ConfigurationError
from repro.mesh16.frame import default_frame_config
from repro.mesh16.network import ControlPlane
from repro.net.packet import Packet
from repro.overlay.distribution import ScheduleDistributor
from repro.overlay.emulation import TdmaOverlay
from repro.overlay.sync import SyncConfig, SyncDaemon
from repro.phy.channel import BroadcastChannel
from repro.sim.clock import DriftingClock
from repro.sim.engine import Simulator
from repro.sim.random import RngRegistry
from repro.sim.trace import Trace
from repro.net.topology import chain_topology, grid_topology
from repro.units import ppm


def build(topology, initial_schedule=None, gateway=0, seed=3,
          drift_ppm=5.0):
    sim = Simulator()
    trace = Trace()
    config = default_frame_config()
    channel = BroadcastChannel(sim, topology, config.phy, trace)
    rngs = RngRegistry(seed=seed)
    clocks, daemons = {}, {}
    for node in topology.nodes:
        skew = 0.0 if node == gateway else float(
            rngs.stream(f"skew/{node}").uniform(-ppm(drift_ppm),
                                                ppm(drift_ppm)))
        clocks[node] = DriftingClock(skew=skew)
        daemons[node] = SyncDaemon(node, gateway, clocks[node], SyncConfig(),
                                   rngs.stream(f"sync/{node}"), trace)
    delivered = []
    overlay = TdmaOverlay(
        sim, topology, channel, config,
        ControlPlane(topology, gateway, config),
        initial_schedule or Schedule(config.data_slots),
        clocks, daemons,
        on_packet=lambda n, p: delivered.append((sim.now, n, p)),
        trace=trace)
    distributor = ScheduleDistributor(overlay, gateway)
    overlay.attach_distributor(distributor)
    return sim, overlay, distributor, delivered, trace, config


def test_announcement_floods_to_all_nodes():
    topology = grid_topology(3, 3)
    sim, overlay, distributor, ____, trace, config = build(topology)
    new_schedule = Schedule(config.data_slots,
                            {(0, 1): SlotBlock(0, 1),
                             (1, 2): SlotBlock(1, 1)})
    overlay.start()
    distributor.announce(new_schedule, activation_frame=40)
    sim.run(until=0.5)
    assert distributor.coverage() == 1.0
    assert trace.count("dsch.learn") == topology.num_nodes()


def test_nodes_apply_at_activation_frame():
    topology = chain_topology(3)
    sim, overlay, distributor, ____, trace, config = build(topology)
    new_schedule = Schedule(config.data_slots, {(1, 2): SlotBlock(4, 2)})
    overlay.start()
    distributor.announce(new_schedule, activation_frame=30)
    activation_time = 30 * config.frame_duration_s

    sim.run(until=activation_time - 0.001)
    assert overlay.nodes[1].tx_slots == []  # learned but not applied
    sim.run(until=activation_time + 0.02)
    assert overlay.nodes[1].tx_slots == [(4, (1, 2)), (5, (1, 2))]
    assert trace.count("dsch.activate") == 3


def test_data_flows_after_in_band_activation():
    topology = chain_topology(2)
    sim, overlay, distributor, delivered, ____, config = build(topology)
    overlay.start()
    distributor.announce(
        Schedule(config.data_slots, {(0, 1): SlotBlock(2, 1)}),
        activation_frame=10)
    packet = Packet(flow="f", seq=0, size_bits=400, created_s=0.0,
                    route=((0, 1),))
    overlay.transmit(0, packet)
    # before activation nothing moves; after it, the queued packet drains
    sim.run(until=10 * config.frame_duration_s - 0.001)
    assert delivered == []
    sim.run(until=12 * config.frame_duration_s)
    assert [(n, p) for ____, n, p in delivered] == [(1, packet)]


def test_newer_version_supersedes_older():
    topology = chain_topology(3)
    sim, overlay, distributor, ____, ____, config = build(topology)
    overlay.start()
    distributor.announce(
        Schedule(config.data_slots, {(0, 1): SlotBlock(0, 1)}),
        activation_frame=20)
    distributor.announce(
        Schedule(config.data_slots, {(0, 1): SlotBlock(7, 1)}),
        activation_frame=25)
    sim.run(until=0.5)
    assert overlay.nodes[0].tx_slots == [(7, (0, 1))]
    assert distributor.applied_version[0] == 2


def test_beacons_resume_after_distribution():
    topology = chain_topology(3)
    sim, overlay, distributor, ____, trace, config = build(topology)
    overlay.start()
    distributor.announce(Schedule(config.data_slots), activation_frame=15)
    sim.run(until=1.0)
    # sync still works: beacons were sent after the flood finished
    assert trace.count("sync.beacon") > 0
    assert trace.count("sync.adopt") > 0


def test_announce_validates_frame_geometry():
    topology = chain_topology(2)
    ____, overlay, distributor, ____, ____, ____ = build(topology)
    with pytest.raises(ConfigurationError):
        distributor.announce(Schedule(5), activation_frame=10)


def test_double_attach_rejected():
    topology = chain_topology(2)
    ____, overlay, distributor, ____, ____, ____ = build(topology)
    with pytest.raises(ConfigurationError):
        overlay.attach_distributor(distributor)


def test_rebroadcast_budget_respected():
    topology = chain_topology(2)
    sim, overlay, distributor, ____, trace, ____ = build(topology)
    overlay.start()
    distributor.announce(Schedule(default_frame_config().data_slots),
                         activation_frame=50)
    sim.run(until=2.0)
    # each node transmits the announcement at most `rebroadcasts` times
    control_txs = sum(1 for r in trace.records("phy.tx")
                      if r["kind"] == "control")
    assert control_txs <= distributor.rebroadcasts * topology.num_nodes()
    assert control_txs >= 2  # gateway + at least one relay


# -- resilient dissemination --------------------------------------------------


def build_resilient(topology, gateway=0, loss=0.0, seed=7,
                    conflicts=None, **config_kwargs):
    sim = Simulator()
    trace = Trace()
    config = default_frame_config()
    channel = BroadcastChannel(sim, topology, config.phy, trace)
    rngs = RngRegistry(seed=seed)
    if loss > 0.0:
        channel.set_control_error_model(rngs.stream("control_loss"),
                                        default_error_rate=loss)
    clocks = {node: DriftingClock(skew=0.0) for node in topology.nodes}
    daemons = {node: SyncDaemon(node, gateway, clocks[node], SyncConfig(),
                                rngs.stream(f"sync/{node}"), trace)
               for node in topology.nodes}
    overlay = TdmaOverlay(
        sim, topology, channel, config,
        ControlPlane(topology, gateway, config),
        Schedule(config.data_slots), clocks, daemons,
        on_packet=lambda n, p: None, trace=trace)
    resilience = ResilienceConfig(reflood_interval_frames=4,
                                  **config_kwargs)
    distributor = ScheduleDistributor(overlay, gateway,
                                      resilience=resilience,
                                      conflicts=conflicts)
    overlay.attach_distributor(distributor)
    return sim, overlay, distributor, trace, config


def test_resilient_flood_commits_via_implicit_acks():
    topology = chain_topology(4)
    sim, overlay, distributor, trace, config = build_resilient(topology)
    overlay.start()
    distributor.announce(
        Schedule(config.data_slots, {(0, 1): SlotBlock(0, 1)}),
        activation_frame=40)
    sim.run(until=1.0)
    assert distributor.committed_version == 1
    assert distributor.acked_coverage() == 1.0
    assert 1 in distributor.commit_times
    assert trace.count("dsch.commit") == 1


def test_stale_version_rejected_but_mined_for_acks():
    topology = chain_topology(3)
    sim, overlay, distributor, ____, config = build_resilient(topology)
    overlay.start()
    first = distributor.announce(
        Schedule(config.data_slots, {(0, 1): SlotBlock(0, 1)}),
        activation_frame=30)
    sim.run(until=0.5)
    distributor.announce(
        Schedule(config.data_slots, {(0, 1): SlotBlock(3, 1)}),
        activation_frame=60)
    sim.run(until=1.0)
    assert distributor.seen_version[2] == 2
    with obs.use_registry(obs.MetricsRegistry()) as registry:
        # a straggler's rebroadcast of v1 arrives after v2 took over
        accepted = distributor.on_announcement(2, first)
        counters = registry.snapshot()["counters"]
    assert accepted is False
    assert counters["resilience.dsch.stale_rejected"] == 1
    assert distributor.seen_version[2] == 2


def test_epoch_refresh_rearms_rebroadcast_budget():
    topology = chain_topology(3)
    sim, overlay, distributor, ____, config = build_resilient(topology)
    overlay.start()
    announced = distributor.announce(
        Schedule(config.data_slots, {(0, 1): SlotBlock(0, 1)}),
        activation_frame=30)
    sim.run(until=1.0)
    assert distributor._pending.get(2) is None  # budget exhausted
    refreshed = replace(announced, epoch=5, acked=())
    assert distributor.on_announcement(2, refreshed) is False
    assert distributor._pending[2][1] == distributor.rebroadcasts
    # same version, non-newer epoch: no refresh
    del distributor._pending[2]
    assert distributor.on_announcement(2, refreshed) is False
    assert 2 not in distributor._pending


def test_lossy_flood_commits_through_refloods():
    topology = grid_topology(3, 3)
    sim, overlay, distributor, trace, config = build_resilient(
        topology, loss=0.4)
    overlay.start()
    distributor.announce(
        Schedule(config.data_slots, {(0, 1): SlotBlock(0, 1)}),
        activation_frame=40)
    with obs.use_registry(obs.MetricsRegistry()) as registry:
        sim.run(until=4.0)
        counters = registry.snapshot()["counters"]
    assert distributor.committed_version == 1
    assert distributor.coverage() == 1.0
    assert counters.get("resilience.dsch.refloods", 0) > 0


def test_commit_gates_successor_versions():
    topology = chain_topology(4)
    sim, overlay, distributor, trace, config = build_resilient(topology)
    overlay.start()
    distributor.announce(
        Schedule(config.data_slots, {(0, 1): SlotBlock(0, 1)}),
        activation_frame=30)
    distributor.announce(
        Schedule(config.data_slots, {(0, 1): SlotBlock(3, 1)}),
        activation_frame=35)
    # the second target is queued, not flooding: v1 is still uncommitted
    assert distributor._inflight == 1
    assert len(distributor._queue) == 1
    sim.run(until=2.0)
    assert distributor.committed_version == 2
    assert distributor.commit_times[1] <= distributor.announce_times[2]


def test_conflicting_target_goes_through_transition_version():
    topology = chain_topology(4)
    conflicts = conflict_graph(topology, hops=2)
    sim, overlay, distributor, trace, config = build_resilient(
        topology, conflicts=conflicts)
    overlay.start()
    distributor.announce(
        Schedule(config.data_slots, {(0, 1): SlotBlock(0, 2),
                                     (2, 3): SlotBlock(4, 2)}),
        activation_frame=20)
    # same slots, conflicting transmitters (1,2) overlaps both old blocks
    with obs.use_registry(obs.MetricsRegistry()) as registry:
        distributor.announce(
            Schedule(config.data_slots, {(1, 2): SlotBlock(0, 2),
                                         (2, 3): SlotBlock(4, 2)}),
            activation_frame=40)
        sim.run(until=3.0)
        counters = registry.snapshot()["counters"]
    assert counters["resilience.dsch.transition_versions"] == 1
    # v1 = first target, v2 = transition (compatible subset), v3 = target
    assert distributor.committed_version == 3
    assert distributor._announcements[2].assignments == \
        (((2, 3), SlotBlock(4, 2)),)
    assert distributor._announcements[3].assignments == \
        (((1, 2), SlotBlock(0, 2)), ((2, 3), SlotBlock(4, 2)))


def test_blacked_out_node_holds_last_known_good():
    topology = chain_topology(4)
    sim, overlay, distributor, ____, config = build_resilient(topology)
    overlay.start()
    distributor.announce(
        Schedule(config.data_slots, {(2, 3): SlotBlock(1, 1)}),
        activation_frame=20)
    sim.run(until=1.0)
    assert distributor.applied_version[3] == 1
    # now node 3 stops hearing control traffic entirely
    overlay.channel.set_control_error_model(
        RngRegistry(seed=1).stream("control_loss"), default_error_rate=0.0)
    overlay.channel.update_control_error_rates({(2, 3): 0.999})
    distributor.announce(
        Schedule(config.data_slots, {(2, 3): SlotBlock(6, 1)}),
        activation_frame=120)
    sim.run(until=2.5)
    # the mesh moved on; the victim keeps executing its last-known-good map
    assert distributor.applied_version[0] == 2
    assert distributor.applied_version[3] == 1
    assert distributor.applied_assignments[3] == \
        (((2, 3), SlotBlock(1, 1)),)
    assert distributor.committed_version == 1  # coverage gate holds v2 open
    # the victim still holds the committed version, so it is not *behind*
    # the commit point -- exactly the make-before-break invariant
    assert distributor.holdover_nodes() == frozenset()
