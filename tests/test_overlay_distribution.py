"""In-band schedule distribution (MSH-DSCH flooding)."""

import pytest

from repro.core.schedule import Schedule, SlotBlock
from repro.errors import ConfigurationError
from repro.mesh16.frame import default_frame_config
from repro.mesh16.network import ControlPlane
from repro.net.packet import Packet
from repro.overlay.distribution import ScheduleDistributor
from repro.overlay.emulation import TdmaOverlay
from repro.overlay.sync import SyncConfig, SyncDaemon
from repro.phy.channel import BroadcastChannel
from repro.sim.clock import DriftingClock
from repro.sim.engine import Simulator
from repro.sim.random import RngRegistry
from repro.sim.trace import Trace
from repro.net.topology import chain_topology, grid_topology
from repro.units import ppm


def build(topology, initial_schedule=None, gateway=0, seed=3,
          drift_ppm=5.0):
    sim = Simulator()
    trace = Trace()
    config = default_frame_config()
    channel = BroadcastChannel(sim, topology, config.phy, trace)
    rngs = RngRegistry(seed=seed)
    clocks, daemons = {}, {}
    for node in topology.nodes:
        skew = 0.0 if node == gateway else float(
            rngs.stream(f"skew/{node}").uniform(-ppm(drift_ppm),
                                                ppm(drift_ppm)))
        clocks[node] = DriftingClock(skew=skew)
        daemons[node] = SyncDaemon(node, gateway, clocks[node], SyncConfig(),
                                   rngs.stream(f"sync/{node}"), trace)
    delivered = []
    overlay = TdmaOverlay(
        sim, topology, channel, config,
        ControlPlane(topology, gateway, config),
        initial_schedule or Schedule(config.data_slots),
        clocks, daemons,
        on_packet=lambda n, p: delivered.append((sim.now, n, p)),
        trace=trace)
    distributor = ScheduleDistributor(overlay, gateway)
    overlay.attach_distributor(distributor)
    return sim, overlay, distributor, delivered, trace, config


def test_announcement_floods_to_all_nodes():
    topology = grid_topology(3, 3)
    sim, overlay, distributor, ____, trace, config = build(topology)
    new_schedule = Schedule(config.data_slots,
                            {(0, 1): SlotBlock(0, 1),
                             (1, 2): SlotBlock(1, 1)})
    overlay.start()
    distributor.announce(new_schedule, activation_frame=40)
    sim.run(until=0.5)
    assert distributor.coverage() == 1.0
    assert trace.count("dsch.learn") == topology.num_nodes()


def test_nodes_apply_at_activation_frame():
    topology = chain_topology(3)
    sim, overlay, distributor, ____, trace, config = build(topology)
    new_schedule = Schedule(config.data_slots, {(1, 2): SlotBlock(4, 2)})
    overlay.start()
    distributor.announce(new_schedule, activation_frame=30)
    activation_time = 30 * config.frame_duration_s

    sim.run(until=activation_time - 0.001)
    assert overlay.nodes[1].tx_slots == []  # learned but not applied
    sim.run(until=activation_time + 0.02)
    assert overlay.nodes[1].tx_slots == [(4, (1, 2)), (5, (1, 2))]
    assert trace.count("dsch.activate") == 3


def test_data_flows_after_in_band_activation():
    topology = chain_topology(2)
    sim, overlay, distributor, delivered, ____, config = build(topology)
    overlay.start()
    distributor.announce(
        Schedule(config.data_slots, {(0, 1): SlotBlock(2, 1)}),
        activation_frame=10)
    packet = Packet(flow="f", seq=0, size_bits=400, created_s=0.0,
                    route=((0, 1),))
    overlay.transmit(0, packet)
    # before activation nothing moves; after it, the queued packet drains
    sim.run(until=10 * config.frame_duration_s - 0.001)
    assert delivered == []
    sim.run(until=12 * config.frame_duration_s)
    assert [(n, p) for ____, n, p in delivered] == [(1, packet)]


def test_newer_version_supersedes_older():
    topology = chain_topology(3)
    sim, overlay, distributor, ____, ____, config = build(topology)
    overlay.start()
    distributor.announce(
        Schedule(config.data_slots, {(0, 1): SlotBlock(0, 1)}),
        activation_frame=20)
    distributor.announce(
        Schedule(config.data_slots, {(0, 1): SlotBlock(7, 1)}),
        activation_frame=25)
    sim.run(until=0.5)
    assert overlay.nodes[0].tx_slots == [(7, (0, 1))]
    assert distributor.applied_version[0] == 2


def test_beacons_resume_after_distribution():
    topology = chain_topology(3)
    sim, overlay, distributor, ____, trace, config = build(topology)
    overlay.start()
    distributor.announce(Schedule(config.data_slots), activation_frame=15)
    sim.run(until=1.0)
    # sync still works: beacons were sent after the flood finished
    assert trace.count("sync.beacon") > 0
    assert trace.count("sync.adopt") > 0


def test_announce_validates_frame_geometry():
    topology = chain_topology(2)
    ____, overlay, distributor, ____, ____, ____ = build(topology)
    with pytest.raises(ConfigurationError):
        distributor.announce(Schedule(5), activation_frame=10)


def test_double_attach_rejected():
    topology = chain_topology(2)
    ____, overlay, distributor, ____, ____, ____ = build(topology)
    with pytest.raises(ConfigurationError):
        overlay.attach_distributor(distributor)


def test_rebroadcast_budget_respected():
    topology = chain_topology(2)
    sim, overlay, distributor, ____, trace, ____ = build(topology)
    overlay.start()
    distributor.announce(Schedule(default_frame_config().data_slots),
                         activation_frame=50)
    sim.run(until=2.0)
    # each node transmits the announcement at most `rebroadcasts` times
    control_txs = sum(1 for r in trace.records("phy.tx")
                      if r["kind"] == "control")
    assert control_txs <= distributor.rebroadcasts * topology.num_nodes()
    assert control_txs >= 2  # gateway + at least one relay
