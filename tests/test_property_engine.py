"""Property-based tests: warm-started SolverEngine equivalence.

The engine's load-bearing contract (ISSUE 5): a warm engine -- carried
orders, Bellman-Ford probe certification, problem caching -- must return
*bitwise-identical* results to a cold one.  Same minimum slots, same
probe log (regions and verdicts in order), same schedule table, on
arbitrary small meshes; and repeated searches through one engine must
not contaminate each other.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import SolverEngine
from repro.core.minslots import minimum_slots
from repro.mesh16.frame import default_frame_config
from repro.net.flows import Flow, FlowSet
from repro.net.routing import route_all
from repro.net.topology import random_disk_topology

FRAME = default_frame_config()


@st.composite
def scheduling_instances(draw):
    """A small random-disk mesh plus 1-3 routed gateway flows."""
    seed = draw(st.integers(min_value=0, max_value=10_000))
    num_nodes = draw(st.integers(min_value=3, max_value=6))
    topology = random_disk_topology(num_nodes, radio_range=45.0,
                                   area=80.0, seed=seed)
    others = [n for n in topology.nodes if n != 0]
    srcs = draw(st.lists(st.sampled_from(others), min_size=1, max_size=3,
                         unique=True))
    flows = route_all(topology, FlowSet([
        Flow(f"f{i}", src=s, dst=0, rate_bps=64_000, delay_budget_s=0.2)
        for i, s in enumerate(srcs)]))
    search = draw(st.sampled_from(["linear", "binary"]))
    return topology, flows, search


def _solve(topology, flows, search, engine, warm_order=None):
    from repro.analysis.scenarios import delay_constraints_for

    demands = flows.link_demands(FRAME.frame_duration_s,
                                 FRAME.data_slot_capacity_bits)
    conflicts = engine.conflict_index(topology, hops=2,
                                      links=sorted(demands)).graph
    return minimum_slots(conflicts, demands, FRAME.data_slots,
                         delay_constraints=delay_constraints_for(
                             flows, FRAME),
                         search=search, engine=engine,
                         warm_order=warm_order)


def _assert_identical(warm, cold):
    assert warm.slots == cold.slots
    assert warm.probes == cold.probes
    assert warm.lower_bound == cold.lower_bound
    if cold.schedule is None:
        assert warm.schedule is None
    else:
        assert warm.schedule.to_dict() == cold.schedule.to_dict()


@given(scheduling_instances())
@settings(max_examples=15, deadline=None)
def test_warm_engine_is_bitwise_identical_to_cold(instance):
    topology, flows, search = instance
    cold = _solve(topology, flows, search,
                  SolverEngine(warm_start=False, max_indexes=0,
                               max_problems=0))
    warm = _solve(topology, flows, search, SolverEngine())
    _assert_identical(warm, cold)


@given(scheduling_instances())
@settings(max_examples=15, deadline=None)
def test_warm_order_seeding_preserves_results(instance):
    """A caller-supplied warm order changes work done, never answers.

    Seeds the search with the linear winner's order (the repair / E10
    reuse pattern): every certified probe must report the verdict the
    cold ILP would have, and the final result must match exactly.
    """
    topology, flows, search = instance
    cold_engine = SolverEngine(warm_start=False, max_indexes=0,
                               max_problems=0)
    cold = _solve(topology, flows, search, cold_engine)
    seed_search = _solve(topology, flows, "linear", SolverEngine())
    warm_engine = SolverEngine()
    warm = _solve(topology, flows, search, warm_engine,
                  warm_order=seed_search.order)
    _assert_identical(warm, cold)
    if seed_search.order is not None and search == "binary":
        # the seeded search never pays more ILP solves than the cold one
        assert warm_engine.stats["ilp_probes"] <= len(cold.probes)


@given(scheduling_instances())
@settings(max_examples=10, deadline=None)
def test_engine_reuse_across_searches_is_isolated(instance):
    """Back-to-back searches through one engine stay bitwise-correct."""
    topology, flows, search = instance
    shared = SolverEngine()
    first = _solve(topology, flows, search, shared)
    second = _solve(topology, flows, search, shared)
    _assert_identical(second, first)
    if first.schedule is not None:
        # cache hits hand out independent copies, never aliases
        assert second.schedule is not first.schedule
        assert second.ilp.order is not first.ilp.order
