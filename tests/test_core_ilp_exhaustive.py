"""Exhaustive cross-validation of the ILP on tiny instances.

For instances small enough to enumerate every possible assignment of
start slots, the ILP's answers (feasibility, minimum region, minimum max
delay) must match brute force exactly.  This pins the solver's
formulation -- big-M coupling, delay telescoping, region bounds -- against
ground truth rather than against itself.
"""

import itertools

import pytest

from repro.core.conflict import conflict_graph
from repro.core.delay import path_delay_slots
from repro.core.ilp import DelayConstraint, SchedulingProblem, solve_schedule_ilp
from repro.core.minslots import minimum_slots
from repro.core.schedule import Schedule, SlotBlock
from repro.net.topology import chain_topology, star_topology


def brute_force_schedules(conflicts, demands, frame_slots, region=None):
    """Yield every conflict-free schedule (one block per link)."""
    region = frame_slots if region is None else region
    links = sorted(l for l, d in demands.items() if d > 0)
    ranges = [range(0, region - demands[l] + 1) if region >= demands[l]
              else range(0) for l in links]
    for starts in itertools.product(*ranges):
        schedule = Schedule(frame_slots)
        for link, start in zip(links, starts):
            schedule.assign(link, SlotBlock(start, demands[link]))
        if not schedule.violations(conflicts):
            yield schedule


def brute_force_min_region(conflicts, demands, frame_slots,
                           route=None, budget=None):
    """Smallest region admitting a conflict-free (and delay-ok) schedule."""
    for region in range(1, frame_slots + 1):
        for schedule in brute_force_schedules(conflicts, demands,
                                              frame_slots, region):
            if route is not None and budget is not None:
                if path_delay_slots(schedule, route) > budget:
                    continue
            return region
    return None


CASES = [
    # (topology, demands)
    (chain_topology(3), {(0, 1): 1, (1, 2): 1}),
    (chain_topology(4), {(0, 1): 2, (1, 2): 1, (2, 3): 1}),
    (chain_topology(5), {(0, 1): 1, (1, 2): 1, (2, 3): 1, (3, 4): 1}),
    (star_topology(3), {(0, 1): 1, (0, 2): 2, (0, 3): 1}),
    (star_topology(2), {(0, 1): 2, (0, 2): 2, (1, 0): 1}),
]


@pytest.mark.parametrize("topology,demands", CASES,
                         ids=[t.name for t, ____ in CASES])
def test_min_region_matches_brute_force(topology, demands):
    frame_slots = sum(demands.values()) + 2
    conflicts = conflict_graph(topology, hops=2)
    expected = brute_force_min_region(conflicts, demands, frame_slots)
    search = minimum_slots(conflicts, demands, frame_slots)
    assert search.slots == expected


@pytest.mark.parametrize("budget", [4, 5, 6, 8, 12])
def test_delay_constrained_min_region_matches_brute_force(budget):
    topology = chain_topology(5)
    route = ((0, 1), (1, 2), (2, 3), (3, 4))
    demands = {link: 1 for link in route}
    frame_slots = 6
    conflicts = conflict_graph(topology, hops=2)
    expected = brute_force_min_region(conflicts, demands, frame_slots,
                                      route=route, budget=budget)
    search = minimum_slots(
        conflicts, demands, frame_slots,
        delay_constraints=[DelayConstraint("f", route, budget)])
    assert search.slots == expected


@pytest.mark.parametrize("topology,demands", CASES[:3],
                         ids=[t.name for t, ____ in CASES[:3]])
def test_minimized_max_delay_matches_brute_force(topology, demands):
    # one route spanning the chain
    nodes = topology.num_nodes()
    route = tuple((i, i + 1) for i in range(nodes - 1))
    demands = dict(demands)
    for link in route:
        demands.setdefault(link, 1)
    frame_slots = sum(demands.values()) + 1
    conflicts = conflict_graph(topology, hops=2)

    best = min(path_delay_slots(s, route) for s in
               brute_force_schedules(conflicts, demands, frame_slots))
    result = solve_schedule_ilp(SchedulingProblem(
        conflicts, demands, frame_slots,
        delay_constraints=[DelayConstraint("f", route,
                                           10 * frame_slots)],
        minimize_max_delay=True))
    assert result.feasible
    assert result.max_delay_slots == best


def test_infeasibility_matches_brute_force():
    topology = star_topology(2)
    conflicts = conflict_graph(topology, hops=2)
    demands = {(0, 1): 3, (0, 2): 3}
    # 5 slots cannot hold 6 conflicting slot-demands
    assert brute_force_min_region(conflicts, demands, 5) is None
    assert not minimum_slots(conflicts, demands, 5).feasible