"""Seeded random stream registry."""

import numpy as np

from repro.sim.random import RngRegistry


def test_same_name_returns_same_generator():
    rngs = RngRegistry(seed=1)
    assert rngs.stream("a") is rngs.stream("a")


def test_streams_are_independent_by_name():
    rngs = RngRegistry(seed=1)
    a = rngs.stream("a").integers(0, 2 ** 31, size=16)
    b = rngs.stream("b").integers(0, 2 ** 31, size=16)
    assert not np.array_equal(a, b)


def test_reproducible_across_registries():
    draw1 = RngRegistry(seed=42).stream("x").random(8)
    draw2 = RngRegistry(seed=42).stream("x").random(8)
    assert np.array_equal(draw1, draw2)


def test_different_seeds_differ():
    draw1 = RngRegistry(seed=1).stream("x").random(8)
    draw2 = RngRegistry(seed=2).stream("x").random(8)
    assert not np.array_equal(draw1, draw2)


def test_new_consumer_does_not_shift_existing_stream():
    plain = RngRegistry(seed=7)
    first = plain.stream("keep").random(4)

    mixed = RngRegistry(seed=7)
    mixed.stream("new-consumer").random(100)  # interleaved other use
    second = mixed.stream("keep").random(4)
    assert np.array_equal(first, second)


def test_spawn_creates_derived_registry():
    parent = RngRegistry(seed=3)
    child1 = parent.spawn("rep0")
    child2 = parent.spawn("rep1")
    assert child1.seed != child2.seed
    # deterministic derivation
    assert RngRegistry(seed=3).spawn("rep0").seed == child1.seed


def test_seed_property():
    assert RngRegistry(seed=99).seed == 99
