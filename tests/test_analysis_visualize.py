"""ASCII schedule rendering."""

from repro.analysis.visualize import render_schedule, render_two_class
from repro.core.besteffort import schedule_two_classes
from repro.core.conflict import conflict_graph
from repro.core.schedule import Schedule, SlotBlock
from repro.net.topology import chain_topology


def test_marks_assigned_slots():
    schedule = Schedule(6, {(0, 1): SlotBlock(0, 2),
                            (2, 3): SlotBlock(3, 1)})
    text = render_schedule(schedule)
    lines = text.splitlines()
    assert lines[0].endswith("012345")
    assert lines[1].endswith("##....")
    assert lines[2].endswith("...#..")


def test_link_subset_and_missing_links():
    schedule = Schedule(4, {(0, 1): SlotBlock(1, 1)})
    text = render_schedule(schedule, links=[(0, 1), (9, 8)])
    lines = text.splitlines()
    assert lines[1].endswith(".#..")
    assert lines[2].endswith("....")  # unassigned link renders empty


def test_custom_marks():
    schedule = Schedule(3, {(0, 1): SlotBlock(0, 3)})
    text = render_schedule(schedule, mark="X", empty="-")
    assert text.splitlines()[1].endswith("XXX")


def test_slot_header_wraps_at_ten():
    schedule = Schedule(12, {(0, 1): SlotBlock(11, 1)})
    header = render_schedule(schedule).splitlines()[0]
    assert header.endswith("012345678901")


def test_two_class_rendering():
    topology = chain_topology(5)
    conflicts = conflict_graph(topology, hops=2)
    two = schedule_two_classes(conflicts, {(0, 1): 2}, {(3, 4): 3},
                               frame_slots=8)
    text = render_two_class(two)
    assert "G" in text
    assert "b" in text
    assert "|" in text.splitlines()[0]  # region boundary marker


def test_doctest_example():
    import doctest
    import repro.analysis.visualize as module
    failures, ____ = doctest.testmod(module)
    assert failures == 0
