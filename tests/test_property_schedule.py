"""Property-based tests: scheduling invariants across algorithms.

These are the library's load-bearing guarantees: every scheduler (greedy,
order+Bellman-Ford, ILP) must produce conflict-free schedules meeting the
demands, and the delay bound ``delay <= (wraps + 1) * frame`` must hold for
any schedule and route.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

import numpy as np

from repro.core.conflict import conflict_graph
from repro.core.delay import path_delay_slots, path_wraps
from repro.core.greedy import greedy_schedule
from repro.core.ilp import SchedulingProblem, solve_schedule_ilp
from repro.core.ordering import TransmissionOrder, schedule_from_order
from repro.errors import InfeasibleScheduleError
from repro.net.topology import chain_topology, grid_topology


@st.composite
def chain_demand_instances(draw):
    nodes = draw(st.integers(min_value=3, max_value=8))
    topology = chain_topology(nodes)
    links = topology.links
    k = draw(st.integers(min_value=1, max_value=min(6, len(links))))
    indices = draw(st.lists(st.integers(0, len(links) - 1),
                            min_size=k, max_size=k, unique=True))
    demands = {links[i]: draw(st.integers(min_value=1, max_value=3))
               for i in indices}
    return topology, demands


@given(chain_demand_instances())
@settings(max_examples=80, deadline=None)
def test_greedy_schedules_are_conflict_free_and_meet_demands(instance):
    topology, demands = instance
    conflicts = conflict_graph(topology, hops=2)
    schedule = greedy_schedule(conflicts, demands)
    schedule.validate(conflicts)
    assert schedule.demands_met(demands)


@given(chain_demand_instances(), st.randoms(use_true_random=False))
@settings(max_examples=60, deadline=None)
def test_any_total_order_yields_valid_schedule_or_infeasible(instance, rnd):
    topology, demands = instance
    conflicts = conflict_graph(topology, hops=2)
    links = sorted(demands)
    rnd.shuffle(links)
    order = TransmissionOrder.from_ranking(links)
    total = sum(demands.values())
    try:
        schedule = schedule_from_order(conflicts, demands,
                                       frame_slots=total, order=order)
    except InfeasibleScheduleError:
        # a total order can never be infeasible when the frame has room
        # for the serial schedule
        raise AssertionError(
            "serial frame must accommodate any total order")
    schedule.validate(conflicts)
    assert schedule.demands_met(demands)


@given(chain_demand_instances())
@settings(max_examples=30, deadline=None)
def test_ilp_matches_or_beats_greedy_makespan(instance):
    topology, demands = instance
    conflicts = conflict_graph(topology, hops=2)
    greedy = greedy_schedule(conflicts, demands)
    result = solve_schedule_ilp(SchedulingProblem(
        conflicts, demands, frame_slots=greedy.frame_slots))
    # greedy found a schedule in its makespan, so the ILP must too
    assert result.feasible
    result.schedule.validate(conflicts)


@st.composite
def schedules_with_routes(draw):
    hops = draw(st.integers(min_value=1, max_value=6))
    frame = draw(st.integers(min_value=4, max_value=24))
    route = tuple((i, i + 1) for i in range(hops))
    blocks = {}
    for link in route:
        length = draw(st.integers(min_value=1, max_value=2))
        start = draw(st.integers(min_value=0, max_value=frame - length))
        blocks[link] = (start, length)
    return frame, route, blocks


@given(schedules_with_routes())
@settings(max_examples=200, deadline=None)
def test_delay_wraps_identity(case):
    from repro.core.schedule import Schedule, SlotBlock

    frame, route, blocks = case
    schedule = Schedule(frame, {l: SlotBlock(*b) for l, b in blocks.items()})
    delay = path_delay_slots(schedule, route)
    wraps = path_wraps(schedule, route)
    # the fundamental bound the ordering optimization relies on
    assert wraps * frame < delay <= (wraps + 1) * frame
    # delay at least covers the transmission times on the path
    assert delay >= sum(schedule.block(l).length for l in route)


@given(st.integers(min_value=2, max_value=4),
       st.integers(min_value=2, max_value=4),
       st.integers(min_value=0, max_value=10_000))
@settings(max_examples=20, deadline=None)
def test_grid_conflict_graphs_symmetric_and_loopless(rows, cols, seed):
    topology = grid_topology(rows, cols)
    conflicts = conflict_graph(topology, hops=2)
    for a, b in conflicts.edges:
        assert a != b
    assert set(conflicts.nodes) == set(topology.links)
