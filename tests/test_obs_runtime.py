"""Observability through the execution runtime: sidecars, merge, CLI flags."""

import json

from repro import obs
from repro.runtime.cache import ResultCache
from repro.runtime.runner import run_experiments
from repro.runtime.tasks import make_task

EXPERIMENT = "E11"  # small, solver-heavy: exercises minslots + ILP counters


def _core_counters(registry):
    return {name: value
            for name, value in registry.snapshot()["counters"].items()
            if not name.startswith("runtime.")}


def _run(tmp_path, label, jobs=1, use_cache=True):
    registry = obs.MetricsRegistry()
    outcomes = run_experiments([EXPERIMENT], jobs=jobs,
                               use_cache=use_cache,
                               cache_dir=str(tmp_path / label),
                               metrics=registry)
    assert outcomes[0].ok
    return registry, outcomes


def test_metrics_collection_produces_solver_counters(tmp_path):
    registry, _ = _run(tmp_path, "a")
    counters = registry.snapshot()["counters"]
    assert counters["core.ilp.solves"] > 0
    assert counters["core.minslots.searches"] > 0
    assert counters["runtime.tasks.ok"] == 6
    timings = registry.snapshot(timings=True)["timings"]
    assert timings["runtime.task"]["count"] == 6
    assert "runtime.queue" in timings


def test_merged_metrics_identical_serial_vs_parallel(tmp_path):
    serial, _ = _run(tmp_path, "serial", jobs=1, use_cache=False)
    parallel, _ = _run(tmp_path, "parallel", jobs=3, use_cache=False)
    assert _core_counters(serial) == _core_counters(parallel)
    assert serial.snapshot()["histograms"] == parallel.snapshot()["histograms"]


def test_sidecars_written_next_to_cached_results(tmp_path):
    _run(tmp_path, "c")
    results_dir = tmp_path / "c" / "results"
    sidecars = sorted(results_dir.glob("*.metrics.json"))
    assert len(sidecars) == 6
    snap = json.loads(sidecars[0].read_text())
    assert set(snap) <= {"counters", "gauges", "histograms"}
    assert "timings" not in snap  # wall-clock never reaches disk


def test_cached_rerun_reloads_sidecars(tmp_path):
    cold, _ = _run(tmp_path, "d")
    warm, outcomes = _run(tmp_path, "d")
    assert outcomes[0].cached
    assert _core_counters(warm) == _core_counters(cold)
    warm_counters = warm.snapshot()["counters"]
    assert warm_counters["runtime.tasks.cached"] == 6
    assert "runtime.tasks.ok" not in warm_counters


def test_sidecars_are_deterministic_across_runs(tmp_path):
    _run(tmp_path, "e1", use_cache=True)
    _run(tmp_path, "e2", use_cache=True)
    left = sorted((tmp_path / "e1" / "results").glob("*.metrics.json"))
    right = sorted((tmp_path / "e2" / "results").glob("*.metrics.json"))
    assert [p.name for p in left] == [p.name for p in right]
    for a, b in zip(left, right):
        assert a.read_bytes() == b.read_bytes()


def test_no_metrics_registry_means_no_sidecars(tmp_path):
    run_experiments([EXPERIMENT], jobs=1, cache_dir=str(tmp_path / "f"))
    assert not list((tmp_path / "f" / "results").glob("*.metrics.json"))


def test_cache_metrics_roundtrip_and_invalidate(tmp_path):
    cache = ResultCache(str(tmp_path / "g"))
    task = make_task("tests.runtime_helpers:add",
                     params={"a": 1, "b": 2})
    cache.put(task, 3)
    key = cache.put_metrics(task, {"counters": {"x": 1},
                                   "timings": {"t": {"count": 1}}})
    sidecar = tmp_path / "g" / "results" / f"{key}.metrics.json"
    stored = json.loads(sidecar.read_text())
    assert stored == {"counters": {"x": 1}}  # timings stripped
    assert cache.get_metrics(task) == {"counters": {"x": 1}}
    assert len(cache) == 1  # sidecar not counted as a result
    cache.invalidate(task)
    assert cache.get_metrics(task) is None


def test_ledger_records_queue_time(tmp_path):
    ledger_path = tmp_path / "ledger.jsonl"
    run_experiments([EXPERIMENT], jobs=2, use_cache=False,
                    cache_dir=str(tmp_path / "h"),
                    ledger_path=str(ledger_path))
    entries = [json.loads(line) for line in ledger_path.read_text().splitlines()]
    task_entries = [e for e in entries if "queue_s" in e]
    assert task_entries
    assert all(e["queue_s"] >= 0 for e in task_entries)


def test_trace_collects_spans_in_serial_mode(tmp_path):
    trace_path = tmp_path / "trace.jsonl"
    registry = obs.MetricsRegistry()
    writer = obs.TraceWriter(str(trace_path))
    run_experiments([EXPERIMENT], jobs=1, use_cache=False,
                    cache_dir=str(tmp_path / "i"),
                    metrics=registry, trace=writer)
    writer.close()
    spans = obs.read_trace(str(trace_path))
    assert spans
    assert {"core.minslots.search", "core.ilp.solve"} <= {
        s["name"] for s in spans}
