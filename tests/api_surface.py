"""Build a JSON-able snapshot of the repro public API surface.

The snapshot maps every public name (``repro.__all__`` plus each listed
subpackage's ``__all__``) to a compact description: kind (class /
function / object) and, for callables, the full signature string.  The
frozen copy lives in ``tests/data/public_api_surface.json``;
``test_public_api.py`` diffs the live surface against it so that any
signature change to the public API is an explicit, reviewed edit to the
snapshot -- not an accident noticed by downstream users.

Regenerate after an intentional API change with::

    PYTHONPATH=src python tests/api_surface.py > tests/data/public_api_surface.json
"""

from __future__ import annotations

import importlib
import inspect
import json

#: The modules whose ``__all__`` constitutes the frozen surface.
PUBLIC_MODULES = [
    "repro",
    "repro.core",
    "repro.net",
    "repro.sim",
    "repro.obs",
    "repro.mesh16",
    "repro.overlay",
    "repro.qos",
    "repro.traffic",
    "repro.faults",
    "repro.resilience",
    "repro.mobility",
    "repro.phy",
    "repro.runtime",
]

#: Methods of facade/result classes that are part of the contract.
PUBLIC_CLASS_METHODS = {
    "repro.api.Scenario": ["__init__", "route", "schedule", "simulate",
                           "simulate_qos", "simulate_mobility"],
    "repro.core.minslots.MinSlotResult": [],
    "repro.core.engine.SolverEngine": [
        "__init__", "conflict_index", "interference_index", "zone_index",
        "solve", "certify_order", "minimum_slots"],
    "repro.core.policy.SolverPolicy": [
        "__init__", "coerce", "resolve_mode", "with_overrides"],
}


def _signature_of(obj) -> str | None:
    try:
        return str(inspect.signature(obj))
    except (TypeError, ValueError):
        return None


def _describe(obj) -> dict:
    if inspect.isclass(obj):
        entry = {"kind": "class"}
        init = _signature_of(obj)
        if init is not None:
            entry["signature"] = init
        return entry
    if callable(obj):
        entry = {"kind": "function"}
        sig = _signature_of(obj)
        if sig is not None:
            entry["signature"] = sig
        return entry
    return {"kind": type(obj).__name__}


def build_surface() -> dict:
    """The live public surface, as a nested name -> description dict."""
    surface: dict[str, dict] = {}
    for module_name in PUBLIC_MODULES:
        module = importlib.import_module(module_name)
        names = sorted(getattr(module, "__all__", []))
        surface[module_name] = {
            name: _describe(getattr(module, name)) for name in names}
    for dotted, methods in PUBLIC_CLASS_METHODS.items():
        module_name, _, class_name = dotted.rpartition(".")
        cls = getattr(importlib.import_module(module_name), class_name)
        for method in methods:
            sig = _signature_of(getattr(cls, method))
            if sig is not None:
                surface.setdefault(dotted, {})[method] = {
                    "kind": "method", "signature": sig}
    return surface


def surface_json() -> str:
    return json.dumps(build_surface(), indent=2, sort_keys=True) + "\n"


if __name__ == "__main__":
    print(surface_json(), end="")
