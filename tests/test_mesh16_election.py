"""Distributed mesh election."""

import itertools

import pytest

from repro.errors import ConfigurationError
from repro.mesh16.election import ElectionControlPlane, election_hash
from repro.mesh16.frame import default_frame_config
from repro.net.topology import chain_topology, grid_topology


def plane(topology=None, holdoff=16, gateway=0):
    return ElectionControlPlane(topology or grid_topology(3, 3), gateway,
                                default_frame_config(),
                                holdoff_opportunities=holdoff)


class TestHash:
    def test_deterministic(self):
        assert election_hash(3, 17) == election_hash(3, 17)

    def test_varies_with_both_inputs(self):
        values = {election_hash(n, o) for n in range(8) for o in range(8)}
        assert len(values) == 64  # no collisions in this small set

    def test_reshuffles_rankings_across_opportunities(self):
        # node rankings must not be static, or one node would starve
        leaders = {max(range(6), key=lambda n: election_hash(n, o))
                   for o in range(50)}
        assert len(leaders) >= 4


class TestSafety:
    @pytest.mark.parametrize("topo_factory", [
        lambda: chain_topology(10),
        lambda: grid_topology(3, 4),
    ])
    def test_winners_always_more_than_two_hops_apart(self, topo_factory):
        topology = topo_factory()
        cp = plane(topology)
        for opportunity in range(200):
            winners = sorted(cp.winners(opportunity))
            for a, b in itertools.combinations(winners, 2):
                assert topology.hop_distance(a, b) > 2, (opportunity, a, b)

    def test_holdoff_enforced(self):
        cp = plane(chain_topology(4), holdoff=10)
        last_win: dict[int, int] = {}
        for opportunity in range(300):
            for node in cp.winners(opportunity):
                if node in last_win:
                    assert opportunity - last_win[node] >= 10
                last_win[node] = opportunity


class TestFairnessAndReuse:
    def test_every_node_wins_regularly(self):
        topology = grid_topology(3, 3)
        cp = plane(topology)
        wins = {n: 0 for n in topology.nodes}
        for opportunity in range(400):
            for node in cp.winners(opportunity):
                wins[node] += 1
        assert all(count > 0 for count in wins.values())
        # no node hogs: max/min ratio bounded
        assert max(wins.values()) <= 5 * min(wins.values())

    def test_spatial_reuse_on_long_chain(self):
        # far-apart chain nodes can win the same opportunity
        cp = plane(chain_topology(12))
        multi = [o for o in range(200) if len(cp.winners(o)) >= 2]
        assert multi, "a 12-node chain must show control-slot reuse"

    def test_star_never_reuses(self):
        # every pair of star nodes is within 2 hops: one winner at most
        from repro.net.topology import star_topology
        cp = plane(star_topology(5))
        for opportunity in range(100):
            assert len(cp.winners(opportunity)) <= 1


class TestControlPlaneInterface:
    def test_owns_matches_winners(self):
        topology = grid_topology(3, 3)
        cp = plane(topology)
        config = default_frame_config()
        for frame in range(10):
            for slot in range(config.control_slots):
                opportunity = frame * config.control_slots + slot
                winners = cp.winners(opportunity)
                for node in topology.nodes:
                    assert cp.owns(node, frame, slot) == (node in winners)

    def test_next_opportunity_is_a_win(self):
        topology = grid_topology(3, 3)
        cp = plane(topology)
        for node in topology.nodes:
            frame, slot = cp.next_opportunity(node, from_frame=3)
            assert frame >= 3
            assert cp.owns(node, frame, slot)

    def test_owner_compat(self):
        cp = plane(chain_topology(5))
        value = cp.owner(0, 0)
        assert value == -1 or value in cp.winners(0)

    def test_invalid_inputs(self):
        cp = plane(chain_topology(3))
        with pytest.raises(ConfigurationError):
            cp.winners(-1)
        with pytest.raises(ConfigurationError):
            plane(holdoff=0)


class TestOverlayIntegration:
    def test_sync_converges_under_election(self):
        """The whole emulation runs with the election plane: beacons still
        flood and clocks still lock."""
        from repro.core.schedule import Schedule
        from repro.overlay.emulation import TdmaOverlay
        from repro.overlay.sync import SyncConfig, SyncDaemon
        from repro.phy.channel import BroadcastChannel
        from repro.sim.clock import DriftingClock
        from repro.sim.engine import Simulator
        from repro.sim.random import RngRegistry
        from repro.sim.trace import Trace
        from repro.units import ppm

        topology = grid_topology(3, 3)
        config = default_frame_config()
        sim = Simulator()
        trace = Trace()
        channel = BroadcastChannel(sim, topology, config.phy, trace)
        rngs = RngRegistry(seed=77)
        clocks, daemons = {}, {}
        for node in topology.nodes:
            skew = 0.0 if node == 0 else float(
                rngs.stream(f"k{node}").uniform(-ppm(10), ppm(10)))
            clocks[node] = DriftingClock(skew=skew)
            daemons[node] = SyncDaemon(node, 0, clocks[node], SyncConfig(),
                                       rngs.stream(f"s{node}"), trace)
        overlay = TdmaOverlay(sim, topology, channel, config,
                              plane(topology), Schedule(config.data_slots),
                              clocks, daemons,
                              on_packet=lambda n, p: None, trace=trace)
        overlay.start()
        sim.run(until=3.0)
        assert trace.count("sync.adopt") > 0
        assert overlay.max_sync_error_s() < 50e-6
        # control transmissions never collide (winners > 2 hops apart)
        assert trace.count("tdma.rx_corrupt") == 0