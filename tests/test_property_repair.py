"""Property-based tests: schedule-repair invariants on small topologies.

The repair engine's load-bearing guarantees: whatever faults strike,
(1) the live schedule is always conflict-free (S8), (2) re-applying an
already-applied event never changes anything (idempotence), and (3) the
repair path reaches the same feasibility verdict the full re-solve
oracle reaches -- local repair may be faster, never wronger.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.conflict import conflict_graph
from repro.core.delay import path_delay_slots
from repro.core.repair import RepairEngine
from repro.faults import FaultEvent
from repro.mesh16.frame import default_frame_config
from repro.net.flows import Flow
from repro.net.topology import chain_topology, grid_topology, star_topology


def make_topology(kind):
    return {
        "grid22": lambda: grid_topology(2, 2),
        "grid23": lambda: grid_topology(2, 3),
        "chain3": lambda: chain_topology(3),
        "chain4": lambda: chain_topology(4),
        "star3": lambda: star_topology(3),
    }[kind]()


@st.composite
def fault_instances(draw):
    """A small installed mesh plus a sequence of 1-3 topology faults."""
    topology = make_topology(draw(st.sampled_from(
        ["grid22", "grid23", "chain3", "chain4", "star3"])))
    others = [n for n in topology.nodes if n != 0]
    srcs = draw(st.lists(st.sampled_from(others), min_size=1, max_size=2,
                         unique=True))
    flows = [Flow(f"f{i}", src=s, dst=0, rate_bps=64_000,
                  delay_budget_s=0.1) for i, s in enumerate(srcs)]
    edges = sorted(tuple(sorted(e)) for e in topology.graph.edges)
    crashable = [n for n in others if n not in srcs] or [others[0]]
    events = []
    for step in range(draw(st.integers(min_value=1, max_value=3))):
        if draw(st.booleans()):
            link = edges[draw(st.integers(0, len(edges) - 1))]
            events.append(FaultEvent(float(step + 1), "link_down",
                                     link=link))
        else:
            node = crashable[draw(st.integers(0, len(crashable) - 1))]
            events.append(FaultEvent(float(step + 1), "node_down",
                                     node=node))
    return topology, flows, events


@given(fault_instances())
@settings(max_examples=15, deadline=None)
def test_repair_keeps_schedule_conflict_free_and_in_budget(instance):
    topology, flows, events = instance
    engine = RepairEngine(topology, default_frame_config())
    engine.install(flows)
    for event in events:
        engine.apply(event)
        conflicts = conflict_graph(engine.alive, hops=engine.hops,
                                   links=engine.schedule.links())
        engine.schedule.validate(conflicts)  # S8: raises on any overlap
        for flow in engine.carried_flows:
            assert all(engine.alive.has_link(l) for l in flow.route)
            assert (path_delay_slots(engine.schedule, flow.route)
                    <= engine.budget_slots(flow))


@given(fault_instances())
@settings(max_examples=15, deadline=None)
def test_repair_is_idempotent_on_repeated_events(instance):
    topology, flows, events = instance
    engine = RepairEngine(topology, default_frame_config())
    engine.install(flows)
    for event in events:
        engine.apply(event)
        before = (engine.schedule.to_dict(), engine.version,
                  [f.name for f in engine.carried_flows])
        again = engine.apply(event)
        assert again.strategy == "noop"
        assert (engine.schedule.to_dict(), engine.version,
                [f.name for f in engine.carried_flows]) == before


@given(fault_instances())
@settings(max_examples=10, deadline=None)
def test_repair_matches_full_resolve_feasibility_verdict(instance):
    topology, flows, events = instance
    engine = RepairEngine(topology, default_frame_config())
    engine.install(flows)
    for event in events:
        outcome = engine.apply(event)
        # peek_resolve re-solves the whole managed flow set (carried and
        # parked alike) against the current fault state; its verdict is
        # "can everything reachable be carried?", exactly what
        # outcome.feasible claims about the repair path.
        oracle = engine.peek_resolve()
        assert outcome.feasible == oracle.feasible
