"""Control message models."""

from repro.core.schedule import SlotBlock
from repro.mesh16.messages import ScheduleAnnouncement, SyncBeacon


class TestSyncBeacon:
    def test_relay_increments_hops_and_keeps_round(self):
        beacon = SyncBeacon(origin=0, sender=0, root_time_at_tx=1.5,
                            round_id=7, hops=0)
        relayed = beacon.relayed_by(sender=3, root_time_at_tx=1.6)
        assert relayed.origin == 0
        assert relayed.sender == 3
        assert relayed.round_id == 7
        assert relayed.hops == 1
        assert relayed.root_time_at_tx == 1.6

    def test_size_constant(self):
        assert SyncBeacon.SIZE_BITS == 23 * 8

    def test_frozen(self):
        beacon = SyncBeacon(0, 0, 0.0, 0, 0)
        try:
            beacon.hops = 5
            raised = False
        except AttributeError:
            raised = True
        assert raised


class TestScheduleAnnouncement:
    def test_size_scales_with_links(self):
        empty = ScheduleAnnouncement(1, 0, {})
        one = ScheduleAnnouncement(1, 0, {(0, 1): SlotBlock(0, 1)})
        two = ScheduleAnnouncement(1, 0, {(0, 1): SlotBlock(0, 1),
                                          (1, 2): SlotBlock(1, 1)})
        assert empty.size_bits() == 32
        assert one.size_bits() - empty.size_bits() == 48
        assert two.size_bits() - one.size_bits() == 48
