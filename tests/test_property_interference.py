"""Property-based tests: the interference seam is invisible (ISSUE 10).

The refactor's load-bearing contract: routing the default backend
through the pluggable seam -- ``conflict_index(interference=
ProtocolModel(hops))`` -- must be *bitwise-identical* to the
pre-refactor ``conflict_index(hops=...)`` path.  Same link universe,
same CSR adjacency arrays, same conflict edges, same canonical problem
hash; on arbitrary random-disk meshes, through delta updates and
mobility-style churn, and through the shared engine cache (both
spellings must resolve to the *same* index object, or warm solver state
would silently fork per spelling).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import SolverEngine, canonical_problem_key
from repro.core.ilp import SchedulingProblem
from repro.net.topology import random_disk_topology
from repro.phy.models import ProtocolModel

HOPS = st.integers(min_value=1, max_value=2)


@st.composite
def disk_meshes(draw):
    seed = draw(st.integers(min_value=0, max_value=10_000))
    num_nodes = draw(st.integers(min_value=3, max_value=8))
    return random_disk_topology(num_nodes, radio_range=45.0, area=80.0,
                                seed=seed)


def _assert_same_index(via_hops, via_model):
    assert via_hops.links == via_model.links
    assert np.array_equal(via_hops.indptr, via_model.indptr)
    assert np.array_equal(via_hops.indices, via_model.indices)
    assert (sorted(map(sorted, via_hops.graph.edges))
            == sorted(map(sorted, via_model.graph.edges)))


def _assert_same_problem_hash(via_hops, via_model):
    demands = {link: 1 for link in via_hops.links}
    key_a = canonical_problem_key(
        SchedulingProblem(via_hops.graph, demands, 16))
    key_b = canonical_problem_key(
        SchedulingProblem(via_model.graph, demands, 16))
    assert key_a == key_b


@settings(max_examples=40, deadline=None)
@given(disk_meshes(), HOPS)
def test_protocol_model_is_bitwise_identical(topology, hops):
    via_hops = SolverEngine().conflict_index(topology, hops=hops)
    via_model = SolverEngine().conflict_index(
        topology, interference=ProtocolModel(hops=hops))
    _assert_same_index(via_hops, via_model)
    _assert_same_problem_hash(via_hops, via_model)


@settings(max_examples=25, deadline=None)
@given(disk_meshes(), HOPS)
def test_both_spellings_share_one_cache_entry(topology, hops):
    engine = SolverEngine()
    via_hops = engine.conflict_index(topology, hops=hops)
    via_model = engine.conflict_index(
        topology, interference=ProtocolModel(hops=hops))
    assert via_hops is via_model


@settings(max_examples=25, deadline=None)
@given(disk_meshes(), HOPS, st.data())
def test_identity_survives_delta_updates(topology, hops, data):
    """Churn the mesh in place; the delta-updated index built through
    the seam must still match a cold build of the hops path."""
    engine_model = SolverEngine()
    engine_model.conflict_index(topology,
                                interference=ProtocolModel(hops=hops))

    edges = sorted(tuple(sorted(e)) for e in topology.graph.edges)
    removable = [e for e in edges
                 if topology.graph.degree(e[0]) > 1
                 and topology.graph.degree(e[1]) > 1]
    changed = False
    if removable:
        victim = data.draw(st.sampled_from(removable), label="remove")
        try:
            topology.apply_edge_changes(remove=[victim])
            changed = True
        except Exception:
            pass  # removal would disconnect; churn is optional here
    nodes = sorted(topology.graph.nodes)
    if len(nodes) >= 2 and not changed:
        u = data.draw(st.sampled_from(nodes), label="u")
        v = data.draw(st.sampled_from([n for n in nodes if n != u]),
                      label="v")
        if not topology.graph.has_edge(u, v):
            topology.apply_edge_changes(add=[(u, v)])

    via_model = engine_model.conflict_index(
        topology, interference=ProtocolModel(hops=hops))
    cold = SolverEngine().conflict_index(topology, hops=hops)
    _assert_same_index(cold, via_model)
    _assert_same_problem_hash(cold, via_model)
