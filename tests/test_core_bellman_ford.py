"""Difference-constraint solver."""

import pytest

from repro.core.bellman_ford import DifferenceConstraints, NegativeCycle
from repro.errors import InfeasibleScheduleError


def test_simple_feasible_system():
    system = DifferenceConstraints()
    system.add("a", "b", 3)   # x_b <= x_a + 3
    system.add("b", "c", -1)  # x_c <= x_b - 1
    solution = system.solve()
    assert solution["b"] <= solution["a"] + 3 + 1e-9
    assert solution["c"] <= solution["b"] - 1 + 1e-9


def test_solution_satisfies_all_edges():
    system = DifferenceConstraints()
    edges = [("a", "b", 2), ("b", "c", -5), ("a", "c", -1), ("c", "d", 0)]
    for u, v, w in edges:
        system.add(u, v, w)
    solution = system.solve()
    for u, v, w in edges:
        assert solution[v] <= solution[u] + w + 1e-9


def test_origin_pinned_to_zero():
    system = DifferenceConstraints()
    system.add("o", "a", 5)
    system.add("a", "o", -2)  # x_o <= x_a - 2, i.e. x_a >= 2
    solution = system.solve(origin="o")
    assert solution["o"] == pytest.approx(0.0)
    assert 2 - 1e-9 <= solution["a"] <= 5 + 1e-9


def test_negative_cycle_detected_with_certificate():
    system = DifferenceConstraints()
    system.add("a", "b", 1)
    system.add("b", "c", -2)
    system.add("c", "a", 0)  # cycle weight -1
    with pytest.raises(InfeasibleScheduleError) as excinfo:
        system.solve()
    cycle = excinfo.value.certificate
    assert isinstance(cycle, NegativeCycle)
    assert cycle.weight < 0
    assert set(cycle.vertices) <= {"a", "b", "c"}
    assert len(cycle.vertices) >= 2


def test_zero_weight_cycle_is_feasible():
    system = DifferenceConstraints()
    system.add("a", "b", 1)
    system.add("b", "a", -1)
    solution = system.solve()
    assert solution["b"] == pytest.approx(solution["a"] + 1)


def test_convergence_on_final_pass_not_misreported():
    # a long chain forces relaxation to take many passes; must still be
    # reported feasible (regression test for the off-by-one in the pass
    # count)
    system = DifferenceConstraints()
    n = 30
    for i in range(n):
        system.add(i, i + 1, -1)  # x_{i+1} <= x_i - 1 (a descending chain)
    solution = system.solve()
    for i in range(n):
        assert solution[i + 1] <= solution[i] - 1 + 1e-9


def test_upper_and_lower_helpers():
    system = DifferenceConstraints()
    system.add_upper("o", "x", 10)  # x <= o + 10
    system.add_lower("o", "x", 4)   # x >= o + 4
    solution = system.solve(origin="o")
    assert 4 - 1e-9 <= solution["x"] <= 10 + 1e-9


def test_conflicting_bounds_infeasible():
    system = DifferenceConstraints()
    system.add_upper("o", "x", 3)
    system.add_lower("o", "x", 5)
    with pytest.raises(InfeasibleScheduleError):
        system.solve(origin="o")


def test_empty_system():
    assert DifferenceConstraints().solve() == {}


def test_vertices_listing():
    system = DifferenceConstraints()
    system.add("b", "a", 0)
    assert set(system.vertices()) == {"a", "b"}


def test_negative_cycle_str():
    cycle = NegativeCycle(vertices=["a", "b"], weight=-2.0)
    text = str(cycle)
    assert "a" in text and "-2" in text
