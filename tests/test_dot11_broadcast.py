"""Raw broadcast MAC (the TDMA substrate)."""

import pytest

from repro.dot11.broadcast import RawBroadcastMac
from repro.phy.channel import BroadcastChannel
from repro.phy.frames import FrameKind
from repro.phy.radio import PhyParams
from repro.sim.engine import Simulator
from repro.sim.trace import Trace
from repro.net.topology import chain_topology
from repro.units import US

TEST_PHY = PhyParams("test", 1e6, 1e6, plcp_overhead_s=0.0,
                     propagation_delay_s=1 * US)


def build(topology):
    sim = Simulator()
    trace = Trace()
    channel = BroadcastChannel(sim, topology, TEST_PHY, trace)
    received = []

    def deliver(node, frame, success):
        received.append((node, frame.payload, success))

    macs = {node: RawBroadcastMac(sim, channel, node, deliver, trace)
            for node in topology.nodes}
    return sim, macs, received, trace


def test_immediate_transmission_no_backoff():
    topo = chain_topology(3)
    sim, macs, received, trace = build(topo)
    assert macs[1].broadcast("hello", 1000)
    # transmission started at t=0 exactly (no DIFS, no backoff)
    assert trace.times("phy.tx") == [0.0]
    sim.run()
    assert sorted(n for n, ____, ____ in received) == [0, 2]


def test_no_carrier_sense_deference():
    # even with a neighbour mid-transmission, the raw MAC fires on request
    topo = chain_topology(3)
    sim, macs, received, ____ = build(topo)
    macs[0].broadcast("first", 2000)
    sim.run(until=0.5e-3)
    macs[2].broadcast("second", 2000)  # collides at node 1
    sim.run()
    at_node1 = [(p, ok) for n, p, ok in received if n == 1]
    assert all(not ok for ____, ok in at_node1)


def test_corrupted_receptions_are_reported():
    topo = chain_topology(3)
    sim, macs, received, ____ = build(topo)
    macs[0].broadcast("a", 1000)
    macs[2].broadcast("b", 1000)
    sim.run()
    flags = [ok for n, ____, ok in received if n == 1]
    assert flags == [False, False]


def test_tx_overrun_returns_false():
    topo = chain_topology(2)
    sim, macs, ____, trace = build(topo)
    assert macs[0].broadcast("a", 5000)
    assert not macs[0].broadcast("b", 5000)  # still on air
    assert trace.count("raw.tx_overrun") == 1


def test_explicit_duration_and_kind():
    topo = chain_topology(2)
    sim, macs, received, trace = build(topo)
    macs[0].broadcast("beacon", 184, kind=FrameKind.BEACON,
                      duration=300e-6)
    sim.run()
    assert received[0][1] == "beacon"
    record = trace.last("phy.tx")
    assert record["kind"] == "beacon"
    assert record["duration"] == pytest.approx(300e-6)
