"""VoIP codec models."""

import pytest

from repro.errors import ConfigurationError
from repro.traffic.voip import G711, G723, G729, RTP_UDP_IP_BYTES, VoipCodec


def test_g711_packetization():
    assert G711.payload_bytes == 160
    assert G711.packet_bits == (160 + 40) * 8
    assert G711.packets_per_second == pytest.approx(50.0)
    assert G711.voice_rate_bps == pytest.approx(64_000)
    assert G711.wire_rate_bps == pytest.approx(80_000)


def test_g729_packetization():
    assert G729.voice_rate_bps == pytest.approx(8_000)
    assert G729.packet_bits == (20 + 40) * 8
    # header overhead dominates for low-rate codecs
    assert G729.wire_rate_bps == pytest.approx(24_000)


def test_g723_packetization():
    assert G723.packets_per_second == pytest.approx(1 / 0.030)
    assert G723.voice_rate_bps == pytest.approx(6400)


def test_header_constant():
    assert RTP_UDP_IP_BYTES == 40


def test_emodel_parameters_ordering():
    # G.711 is the reference codec (no equipment impairment); compressed
    # codecs are worse
    assert G711.ie == 0.0
    assert G729.ie > G711.ie
    assert G723.ie > G729.ie


def test_invalid_codec():
    with pytest.raises(ConfigurationError):
        VoipCodec("bad", payload_bytes=0, packet_interval_s=0.02,
                  ie=0, bpl=4)
    with pytest.raises(ConfigurationError):
        VoipCodec("bad", payload_bytes=100, packet_interval_s=0.0,
                  ie=0, bpl=4)
