"""Schedule data model and validation."""

import pytest

from repro.core.conflict import conflict_graph
from repro.core.schedule import Schedule, SlotBlock
from repro.errors import ConfigurationError, SchedulingError


class TestSlotBlock:
    def test_end_and_slots(self):
        block = SlotBlock(3, 2)
        assert block.end == 5
        assert list(block.slots()) == [3, 4]

    def test_overlap_detection(self):
        assert SlotBlock(0, 3).overlaps(SlotBlock(2, 2))
        assert not SlotBlock(0, 3).overlaps(SlotBlock(3, 2))
        assert SlotBlock(5, 1).overlaps(SlotBlock(0, 10))

    def test_invalid_blocks_rejected(self):
        with pytest.raises(ConfigurationError):
            SlotBlock(-1, 2)
        with pytest.raises(ConfigurationError):
            SlotBlock(0, 0)

    def test_ordering(self):
        assert SlotBlock(1, 2) < SlotBlock(2, 1)


class TestSchedule:
    def test_assign_and_lookup(self):
        schedule = Schedule(10)
        schedule.assign((0, 1), SlotBlock(0, 2))
        assert (0, 1) in schedule
        assert schedule.block((0, 1)) == SlotBlock(0, 2)
        assert len(schedule) == 1

    def test_block_must_fit_frame(self):
        schedule = Schedule(4)
        with pytest.raises(SchedulingError, match="exceeds"):
            schedule.assign((0, 1), SlotBlock(3, 2))

    def test_missing_link_raises(self):
        with pytest.raises(SchedulingError):
            Schedule(4).block((0, 1))

    def test_invalid_frame_rejected(self):
        with pytest.raises(ConfigurationError):
            Schedule(0)

    def test_reassign_replaces(self):
        schedule = Schedule(10)
        schedule.assign((0, 1), SlotBlock(0, 1))
        schedule.assign((0, 1), SlotBlock(5, 2))
        assert schedule.block((0, 1)).start == 5

    def test_links_sorted(self):
        schedule = Schedule(10, {(2, 3): SlotBlock(0, 1),
                                 (0, 1): SlotBlock(1, 1)})
        assert schedule.links() == [(0, 1), (2, 3)]

    def test_active_links(self):
        schedule = Schedule(10, {(0, 1): SlotBlock(0, 2),
                                 (3, 4): SlotBlock(1, 3)})
        assert schedule.active_links(0) == [(0, 1)]
        assert schedule.active_links(1) == [(0, 1), (3, 4)]
        assert schedule.active_links(5) == []
        # modular wraparound
        assert schedule.active_links(11) == [(0, 1), (3, 4)]

    def test_transmitter_of_slot(self):
        schedule = Schedule(10, {(7, 1): SlotBlock(0, 2)})
        assert schedule.transmitter_of_slot(7, 1)
        assert not schedule.transmitter_of_slot(1, 1)

    def test_used_slots_and_makespan(self):
        schedule = Schedule(10, {(0, 1): SlotBlock(0, 2),
                                 (3, 4): SlotBlock(1, 2)})
        assert schedule.used_slots() == 3
        assert schedule.makespan() == 3
        assert Schedule(10).makespan() == 0

    def test_utilization_can_exceed_one_with_reuse(self):
        schedule = Schedule(2, {(0, 1): SlotBlock(0, 2),
                                (5, 6): SlotBlock(0, 2)})
        assert schedule.utilization() == pytest.approx(2.0)

    def test_demands_met(self):
        schedule = Schedule(10, {(0, 1): SlotBlock(0, 2)})
        assert schedule.demands_met({(0, 1): 2})
        assert not schedule.demands_met({(0, 1): 3})
        assert not schedule.demands_met({(5, 6): 1})
        assert schedule.demands_met({(5, 6): 0})

    def test_restrict(self):
        schedule = Schedule(10, {(0, 1): SlotBlock(0, 1),
                                 (2, 3): SlotBlock(1, 1)})
        small = schedule.restrict([(0, 1)])
        assert (0, 1) in small
        assert (2, 3) not in small


class TestValidation:
    def test_conflicting_overlap_detected(self, chain5):
        conflicts = conflict_graph(chain5, hops=2)
        schedule = Schedule(10, {(0, 1): SlotBlock(0, 2),
                                 (1, 2): SlotBlock(1, 2)})
        violations = schedule.violations(conflicts)
        assert violations == [((0, 1), (1, 2))]
        with pytest.raises(SchedulingError, match="overlaps"):
            schedule.validate(conflicts)

    def test_non_conflicting_overlap_allowed(self, chain5):
        conflicts = conflict_graph(chain5, hops=2)
        # (0,1) and (3,4) do not conflict under the 2-hop model
        schedule = Schedule(10, {(0, 1): SlotBlock(0, 2),
                                 (3, 4): SlotBlock(0, 2)})
        schedule.validate(conflicts)

    def test_disjoint_blocks_valid(self, chain5):
        conflicts = conflict_graph(chain5, hops=2)
        schedule = Schedule(10, {(0, 1): SlotBlock(0, 2),
                                 (1, 2): SlotBlock(2, 2)})
        schedule.validate(conflicts)

    def test_unscheduled_conflicting_links_ignored(self, chain5):
        conflicts = conflict_graph(chain5, hops=2)
        schedule = Schedule(10, {(0, 1): SlotBlock(0, 2)})
        schedule.validate(conflicts)
