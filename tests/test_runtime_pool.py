"""Execution pool: serial/parallel parity, retries, timeouts, caching."""

import time

import pytest

from repro.errors import ConfigurationError
from repro.runtime.cache import ResultCache
from repro.runtime.ledger import RunLedger
from repro.runtime.pool import run_tasks
from repro.runtime.tasks import make_task

ADD = "tests.runtime_helpers:add"
SLEEP = "tests.runtime_helpers:sleep_for"
BOOM = "tests.runtime_helpers:boom"
FLAKY = "tests.runtime_helpers:flaky"


def _add_tasks(n=6):
    return [make_task(ADD, {"a": i, "b": i}) for i in range(n)]


def test_serial_executes_in_order():
    results = run_tasks(_add_tasks(), jobs=1)
    assert [r.value for r in results] == [0, 2, 4, 6, 8, 10]
    assert all(r.outcome == "ok" for r in results)
    assert all(r.worker == "serial" for r in results)
    assert all(r.attempts == 1 for r in results)


def test_parallel_matches_serial_in_order_and_value():
    serial = run_tasks(_add_tasks(), jobs=1)
    parallel = run_tasks(_add_tasks(), jobs=3)
    assert [r.value for r in serial] == [r.value for r in parallel]
    assert [r.key for r in serial] == [r.key for r in parallel]
    assert all(r.worker.startswith("pid:") for r in parallel)


def test_parallel_overlaps_sleeps():
    """Six 0.3 s sleeps at jobs=3 must take well under 6 * 0.3 s."""
    tasks = [make_task(SLEEP, {"seconds": 0.3}) for _ in range(6)]
    started = time.perf_counter()
    results = run_tasks(tasks, jobs=3)
    wall = time.perf_counter() - started
    assert all(r.outcome == "ok" for r in results)
    assert wall < 1.4, f"no overlap: {wall:.2f}s"


def test_serial_runs_closures_in_process():
    captured = []

    def closure_task():
        captured.append(1)
        return "inline"

    results = run_tasks([make_task(closure_task)], jobs=1)
    assert results[0].value == "inline"
    assert captured == [1]


def test_failure_reported_not_raised():
    results = run_tasks([make_task(BOOM)], jobs=1)
    assert results[0].outcome == "failed"
    assert "RuntimeError: kaboom" in results[0].error
    assert results[0].value is None


@pytest.mark.parametrize("jobs", [1, 2])
def test_retry_then_succeed(tmp_path, jobs):
    task = make_task(FLAKY, {"sentinel_dir": str(tmp_path / f"j{jobs}"),
                             "fail_times": 2})
    results = run_tasks([task], jobs=jobs, retries=2, backoff_s=0.01)
    assert results[0].outcome == "ok"
    assert results[0].value == "recovered"
    assert results[0].attempts == 3


def test_retries_exhausted_reports_failure(tmp_path):
    task = make_task(FLAKY, {"sentinel_dir": str(tmp_path / "s"),
                             "fail_times": 5})
    results = run_tasks([task], jobs=1, retries=1, backoff_s=0.01)
    assert results[0].outcome == "failed"
    assert results[0].attempts == 2
    assert "flaky failure" in results[0].error


def test_timeout_path():
    tasks = [make_task(SLEEP, {"seconds": 2.0}),
             make_task(ADD, {"a": 1, "b": 1})]
    results = run_tasks(tasks, jobs=2, timeout_s=0.4)
    assert results[0].outcome == "timeout"
    assert "timed out" in results[0].error
    assert results[1].outcome == "ok"
    assert results[1].value == 2


def test_cache_hits_skip_execution(tmp_path):
    cache = ResultCache(tmp_path, version="t", fingerprint="f")
    tasks = _add_tasks(3)
    cold = run_tasks(tasks, jobs=1, cache=cache)
    assert [r.outcome for r in cold] == ["ok"] * 3
    warm = run_tasks(tasks, jobs=1, cache=cache)
    assert [r.outcome for r in warm] == ["cached"] * 3
    assert [r.value for r in warm] == [r.value for r in cold]
    assert all(r.worker == "cache" and r.attempts == 0 for r in warm)


def test_failed_tasks_are_not_cached(tmp_path):
    cache = ResultCache(tmp_path, version="t", fingerprint="f")
    run_tasks([make_task(BOOM)], jobs=1, cache=cache)
    assert len(cache) == 0


def test_uncacheable_values_still_succeed(tmp_path):
    cache = ResultCache(tmp_path, version="t", fingerprint="f")
    task = make_task("tests.runtime_helpers:unpicklable_value")
    results = run_tasks([task], jobs=1, cache=cache)
    assert results[0].outcome == "ok"
    assert len(cache) == 0


def test_ledger_gets_one_entry_per_task(tmp_path):
    ledger = RunLedger(tmp_path / "ledger.jsonl")
    cache = ResultCache(tmp_path / "c", version="t", fingerprint="f")
    tasks = _add_tasks(3) + [make_task(BOOM)]
    run_tasks(tasks, jobs=1, cache=cache, ledger=ledger)
    entries = ledger.entries()
    assert len(entries) == 4
    assert [e["outcome"] for e in entries] == ["ok", "ok", "ok", "failed"]
    assert all(e["wall_s"] >= 0.0 for e in entries)
    # second run: cache hits are ledgered too
    run_tasks(tasks[:3], jobs=1, cache=cache, ledger=ledger)
    assert [e["outcome"] for e in ledger.entries()[4:]] == ["cached"] * 3


def test_timeouts_not_retried_by_default():
    task = make_task(SLEEP, {"seconds": 2.0})
    results = run_tasks([task], jobs=2, timeout_s=0.2, retries=2,
                        backoff_s=0.01)
    assert results[0].outcome == "timeout"
    assert results[0].attempts == 1


def test_retry_timeouts_spends_the_retry_budget():
    from repro import obs

    task = make_task(SLEEP, {"seconds": 1.0})
    with obs.use_registry(obs.MetricsRegistry()) as registry:
        results = run_tasks([task], jobs=2, timeout_s=0.15, retries=2,
                            backoff_s=0.01, retry_timeouts=True)
        counters = registry.snapshot()["counters"]
    assert results[0].outcome == "timeout"
    assert results[0].attempts == 3
    assert counters["runtime.pool.timeout_retries"] == 2


def test_injected_clock_and_sleep_run_backoff_instantly(tmp_path):
    """A 10 s exponential backoff schedule finishes in milliseconds."""
    slept = []
    now = [0.0]

    def fake_sleep(seconds):
        slept.append(seconds)
        now[0] += seconds

    task = make_task(FLAKY, {"sentinel_dir": str(tmp_path / "s"),
                             "fail_times": 3})
    started = time.perf_counter()
    results = run_tasks([task], jobs=1, retries=3, backoff_s=10.0,
                        clock=lambda: now[0], sleep=fake_sleep)
    wall = time.perf_counter() - started
    assert results[0].outcome == "ok"
    assert results[0].attempts == 4
    assert slept == [10.0, 20.0, 40.0]  # backoff_s * 2**(attempt-1)
    assert wall < 2.0, f"backoff really slept: {wall:.2f}s"


def test_backoff_jitter_is_deterministic_and_bounded(tmp_path):
    import shutil

    sentinel = tmp_path / "s"
    task = make_task(FLAKY, {"sentinel_dir": str(sentinel),
                             "fail_times": 2})

    def delays_for_run():
        shutil.rmtree(sentinel, ignore_errors=True)
        slept = []
        now = [0.0]

        def fake_sleep(seconds):
            slept.append(seconds)
            now[0] += seconds

        run_tasks([task], jobs=1, retries=2, backoff_s=1.0, jitter=0.5,
                  clock=lambda: now[0], sleep=fake_sleep)
        return slept

    first = delays_for_run()
    second = delays_for_run()
    assert first == second  # keyed by (task, attempt), not randomness
    for attempt, delay in enumerate(first, start=1):
        base = 1.0 * 2 ** (attempt - 1)
        assert base <= delay <= 1.5 * base


def test_permanent_errors_skip_the_retry_budget():
    from repro import obs

    task = make_task("tests.runtime_helpers:permanent_boom")
    for jobs in (1, 2):
        with obs.use_registry(obs.MetricsRegistry()) as registry:
            results = run_tasks([task], jobs=jobs, retries=3,
                                backoff_s=0.01)
            counters = registry.snapshot()["counters"]
        assert results[0].outcome == "failed"
        assert results[0].attempts == 1, f"jobs={jobs}"
        assert "PermanentTaskError" in results[0].error
        assert counters["runtime.pool.permanent_failures"] == 1


def test_bad_arguments_rejected():
    with pytest.raises(ConfigurationError):
        run_tasks([], jobs=0)
    with pytest.raises(ConfigurationError):
        run_tasks([], retries=-1)
    with pytest.raises(ConfigurationError):
        run_tasks([], jitter=-0.1)


def test_on_result_fires_per_task():
    seen = []
    run_tasks(_add_tasks(3), jobs=1,
              on_result=lambda i, r: seen.append((i, r.value)))
    assert sorted(seen) == [(0, 0), (1, 2), (2, 4)]
