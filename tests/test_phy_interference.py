"""Conflict-model vs channel-physics cross-validation."""

import numpy as np
import pytest

from repro.phy.interference import (
    interference_graph,
    overcautious_pairs,
    uncovered_interference,
)
from repro.net.topology import (
    binary_tree_topology,
    chain_topology,
    grid_topology,
    random_disk_topology,
    star_topology,
)

TOPOLOGIES = [
    chain_topology(6),
    grid_topology(3, 3),
    star_topology(4),
    binary_tree_topology(3),
    random_disk_topology(10, 350.0, 800.0, np.random.default_rng(4)),
]


class TestInterferenceGraph:
    def test_shared_node_always_interferes(self, chain5):
        graph = interference_graph(chain5)
        assert graph.has_edge((0, 1), (1, 2))
        assert graph.has_edge((0, 1), (1, 0))

    def test_hidden_terminal_pair_interferes(self, chain5):
        # (0,1) and (2,1): tx 2 is a neighbour of rx 1
        graph = interference_graph(chain5)
        assert graph.has_edge((0, 1), (2, 1))

    def test_far_links_do_not_interfere(self, chain8):
        graph = interference_graph(chain8)
        assert not graph.has_edge((0, 1), (4, 5))

    def test_exposed_terminal_pair_interferes_via_receiver(self, chain5):
        # (1,0) and (2,3): tx 1 and tx 2 are neighbours but the receivers
        # (0 and 3) are out of each other's transmitter range -> the
        # channel model lets both succeed
        graph = interference_graph(chain5)
        assert not graph.has_edge((1, 0), (2, 3))


class TestCoverage:
    @pytest.mark.parametrize("topology", TOPOLOGIES,
                             ids=[t.name for t in TOPOLOGIES])
    def test_two_hop_model_covers_all_interference(self, topology):
        """The safety theorem of the 2-hop model on this channel."""
        assert uncovered_interference(topology, hops=2) == []

    def test_one_hop_model_misses_hidden_terminals(self, chain5):
        # (0,1) and (2,3) share no node, so the 1-hop model allows them
        # together -- but tx 2 is a neighbour of rx 1, so they interfere
        missing = uncovered_interference(chain5, hops=1)
        assert ((0, 1), (2, 3)) in missing

    @pytest.mark.parametrize("topology", TOPOLOGIES,
                             ids=[t.name for t in TOPOLOGIES])
    def test_two_hop_model_is_strictly_conservative(self, topology):
        """The 2-hop model over-separates somewhere on any multihop mesh
        (the spatial-reuse price E11 measures), except degenerate stars."""
        extra = overcautious_pairs(topology, hops=2)
        if topology.num_nodes() > 3 and topology.name != "star4":
            assert extra


class TestEndToEnd:
    def test_schedule_valid_under_model_is_collision_free_on_channel(self):
        """Transmit on every slot of a conflict-free schedule; the channel
        must deliver every intended reception uncorrupted."""
        from repro.core.conflict import conflict_graph
        from repro.core.greedy import greedy_schedule
        from repro.phy.channel import BroadcastChannel, ChannelClient
        from repro.phy.frames import FrameKind, PhyFrame
        from repro.phy.radio import PhyParams
        from repro.sim.engine import Simulator

        topology = grid_topology(3, 3)
        conflicts = conflict_graph(topology, hops=2)
        demands = {link: 1 for link in topology.links}
        schedule = greedy_schedule(conflicts, demands)

        phy = PhyParams("t", 1e6, 1e6, plcp_overhead_s=0.0,
                        propagation_delay_s=1e-6)
        sim = Simulator()
        channel = BroadcastChannel(sim, topology, phy)
        received: list[tuple[int, PhyFrame, bool]] = []

        class Sink(ChannelClient):
            def __init__(self, node):
                self.node = node

            def on_receive(self, frame, success):
                received.append((self.node, frame, success))

            def on_medium_change(self):
                pass

        for node in topology.nodes:
            channel.attach(node, Sink(node))

        slot_duration = 1e-3
        for slot in range(schedule.frame_slots):
            for link in schedule.active_links(slot):
                frame = PhyFrame(FrameKind.DATA, link[0], None, 100,
                                 payload=link)
                sim.schedule_at(slot * slot_duration, channel.transmit,
                                link[0], frame, 500e-6)
        sim.run()

        for node, frame, success in received:
            if frame.payload[1] == node:  # the intended receiver
                assert success, (frame.payload, node)


class TestSinrTruth:
    """The containment validator with an SINR ground truth (E23, S39)."""

    def _spaced_chain(self):
        return chain_topology(8, spacing=90.0)

    def test_two_hop_model_leaves_sinr_pairs_uncovered(self):
        from repro.phy.models import SinrModel

        topology = self._spaced_chain()
        missing = uncovered_interference(topology, hops=2,
                                         truth=SinrModel())
        assert missing
        for a, b in missing:
            assert not set(a) & set(b)  # only non-adjacent pairs escape

    def test_sinr_model_covers_itself(self):
        from repro.phy.models import SinrModel

        topology = self._spaced_chain()
        model = SinrModel()
        assert uncovered_interference(topology, model=model,
                                      truth=model) == []

    def test_wide_protocol_model_can_cover_the_sinr_truth(self):
        from repro.phy.models import SinrModel

        # at 90 m spacing SINR interference reaches 3 hops; hops=4
        # over-covers it (and the chain is long enough not to trip the
        # degenerate-hops guard)
        topology = self._spaced_chain()
        assert uncovered_interference(topology, hops=4,
                                      truth=SinrModel()) == []

    def test_truth_accepts_a_prebuilt_graph(self):
        topology = self._spaced_chain()
        prebuilt = interference_graph(topology)
        assert (uncovered_interference(topology, hops=2, truth=prebuilt)
                == uncovered_interference(topology, hops=2))

    def test_overcautious_pairs_against_sinr(self):
        from repro.phy.models import SinrModel

        # the 4-hop model over-separates relative to the SINR truth
        topology = self._spaced_chain()
        assert overcautious_pairs(topology, hops=4, truth=SinrModel())


class TestIncidenceRewrite:
    """The incidence-map interference_graph matches the pairwise scan."""

    @pytest.mark.parametrize("topology", TOPOLOGIES,
                             ids=[t.name for t in TOPOLOGIES])
    def test_matches_naive_pairwise_scan(self, topology):
        import networkx as nx

        links = topology.links
        naive = nx.Graph()
        naive.add_nodes_from(links)
        for i, a in enumerate(links):
            for b in links[i + 1:]:
                ta, ra = a
                tb, rb = b
                if (set(a) & set(b) or tb in topology.graph[ra]
                        or ta in topology.graph[rb]):
                    naive.add_edge(a, b)
        fast = interference_graph(topology)
        assert list(fast.nodes) == list(naive.nodes)
        assert list(fast.edges) == list(naive.edges)
