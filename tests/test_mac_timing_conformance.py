"""Protocol timing conformance, measured from traces.

These tests read the shared trace like a protocol analyzer would read a
sniffer capture: inter-frame gaps, slot-edge alignment and ACK turnaround
must match the timing constants the MACs are configured with -- not just
"packets arrived".
"""

import pytest

from repro.core.schedule import Schedule, SlotBlock
from repro.dot11.dcf import DcfMac
from repro.dot11.params import DOT11B_PARAMS
from repro.mesh16.frame import default_frame_config
from repro.mesh16.network import ControlPlane
from repro.net.packet import Packet
from repro.overlay.emulation import TdmaOverlay
from repro.overlay.sync import SyncConfig, SyncDaemon
from repro.phy.channel import BroadcastChannel
from repro.sim.clock import DriftingClock
from repro.sim.engine import Simulator
from repro.sim.random import RngRegistry
from repro.sim.trace import Trace
from repro.net.topology import chain_topology


class TestDcfTiming:
    def build(self, seed=1):
        topo = chain_topology(2)
        sim = Simulator()
        trace = Trace(capacity=50_000)
        channel = BroadcastChannel(sim, topo, DOT11B_PARAMS.phy, trace)
        rngs = RngRegistry(seed=seed)
        macs = {n: DcfMac(sim, channel, n, DOT11B_PARAMS,
                          rngs.stream(f"d{n}"), lambda n, p: None, trace)
                for n in topo.nodes}
        return sim, macs, trace

    def test_ack_follows_data_after_exactly_sifs(self):
        sim, macs, trace = self.build()
        macs[0].send(1, "x", 800)
        sim.run(until=0.05)
        txs = list(trace.records("phy.tx"))
        data = next(r for r in txs if r["kind"] == "data")
        ack = next(r for r in txs if r["kind"] == "ack")
        data_end = data.time + DOT11B_PARAMS.phy.airtime(800 + 34 * 8)
        # the receiver stamps SIFS from reception complete (data end +
        # propagation)
        gap = ack.time - data_end
        assert gap == pytest.approx(
            DOT11B_PARAMS.sifs_s + DOT11B_PARAMS.phy.propagation_delay_s,
            abs=1e-9)

    def test_first_access_waits_at_least_difs(self):
        sim, macs, trace = self.build()
        macs[0].send(1, "x", 800)
        sim.run(until=0.05)
        first_tx = trace.times("phy.tx")[0]
        assert first_tx >= DOT11B_PARAMS.difs_s - 1e-12

    def test_backoff_quantized_in_slot_times(self):
        # first transmission time = DIFS + k * slot for integer k
        for seed in range(6):
            sim, macs, trace = self.build(seed=seed)
            macs[0].send(1, "x", 800)
            sim.run(until=0.05)
            first_tx = trace.times("phy.tx")[0]
            k = (first_tx - DOT11B_PARAMS.difs_s) / DOT11B_PARAMS.slot_time_s
            assert k == pytest.approx(round(k), abs=1e-9)
            assert 0 <= round(k) <= DOT11B_PARAMS.cw_min

    def test_consecutive_frames_separated_by_difs_plus_backoff(self):
        sim, macs, trace = self.build()
        for i in range(5):
            macs[0].send(1, i, 800)
        sim.run(until=0.2)
        data_txs = [r.time for r in trace.records("phy.tx")
                    if r["kind"] == "data"]
        ack_air = DOT11B_PARAMS.phy.airtime(14 * 8, basic_rate=True)
        data_air = DOT11B_PARAMS.phy.airtime(800 + 34 * 8)
        for prev, nxt in zip(data_txs, data_txs[1:]):
            # prev data + sifs + ack + at least DIFS before the next frame
            earliest = (prev + data_air + DOT11B_PARAMS.sifs_s + ack_air
                        + DOT11B_PARAMS.difs_s)
            assert nxt >= earliest - 1e-6


class TestTdmaTiming:
    def test_transmissions_start_exactly_guard_after_slot_edge(self):
        topo = chain_topology(2)
        config = default_frame_config()
        sim = Simulator()
        trace = Trace(capacity=50_000)
        channel = BroadcastChannel(sim, topo, config.phy, trace)
        rngs = RngRegistry(seed=2)
        clocks = {n: DriftingClock() for n in topo.nodes}  # perfect clocks
        daemons = {n: SyncDaemon(n, 0, clocks[n],
                                 SyncConfig(timestamp_jitter_s=0.0),
                                 rngs.stream(f"s{n}"), trace)
                   for n in topo.nodes}
        overlay = TdmaOverlay(
            sim, topo, channel, config, ControlPlane(topo, 0, config),
            Schedule(config.data_slots, {(0, 1): SlotBlock(5, 1)}),
            clocks, daemons, on_packet=lambda n, p: None, trace=trace)
        for seq in range(8):
            overlay.transmit(0, Packet(flow="f", seq=seq, size_bits=400,
                                       created_s=0.0, route=((0, 1),)))
        overlay.start()
        sim.run(until=0.1)

        slot_offset = config.data_slot_offset(5)
        for record in trace.records("phy.tx"):
            if record["kind"] != "data":
                continue
            in_frame = record.time % config.frame_duration_s
            assert in_frame == pytest.approx(slot_offset + config.guard_s,
                                             abs=1e-9)

    def test_transmission_never_crosses_slot_boundary(self):
        topo = chain_topology(2)
        config = default_frame_config()
        sim = Simulator()
        trace = Trace(capacity=50_000)
        channel = BroadcastChannel(sim, topo, config.phy, trace)
        rngs = RngRegistry(seed=3)
        clocks = {n: DriftingClock() for n in topo.nodes}
        daemons = {n: SyncDaemon(n, 0, clocks[n], SyncConfig(),
                                 rngs.stream(f"s{n}"), trace)
                   for n in topo.nodes}
        overlay = TdmaOverlay(
            sim, topo, channel, config, ControlPlane(topo, 0, config),
            Schedule(config.data_slots, {(0, 1): SlotBlock(3, 1)}),
            clocks, daemons, on_packet=lambda n, p: None, trace=trace)
        # maximum-size fragments stress the slot budget hardest
        big = config.data_slot_capacity_bits
        for seq in range(5):
            overlay.transmit(0, Packet(flow="f", seq=seq, size_bits=big,
                                       created_s=0.0, route=((0, 1),)))
        overlay.start()
        sim.run(until=0.1)
        slot_end_offset = config.data_slot_offset(3) + config.data_slot_s
        for record in trace.records("phy.tx"):
            if record["kind"] != "data":
                continue
            end_in_frame = (record.time + record["duration"]) \
                % config.frame_duration_s
            assert end_in_frame <= slot_end_offset + 1e-9
