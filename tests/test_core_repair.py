"""Online schedule repair: local BF repair, re-solve fallback, re-admission."""

import pytest

from repro.core.conflict import conflict_graph
from repro.core.delay import path_delay_slots
from repro.core.repair import RepairEngine
from repro.errors import ConfigurationError
from repro.faults import FaultEvent, FaultInjector, FaultPlan
from repro.mesh16.frame import default_frame_config
from repro.net.flows import Flow


def make_engine(topology, gateway=0, **kwargs):
    return RepairEngine(topology, default_frame_config(), gateway=gateway,
                        **kwargs)


def gateway_flow(name, src, rate_bps=64_000, budget_s=0.1):
    return Flow(name, src=src, dst=0, rate_bps=rate_bps,
                delay_budget_s=budget_s)


def assert_valid(engine):
    """Post-repair invariant: conflict-free and within every budget."""
    conflicts = conflict_graph(engine.alive, hops=engine.hops,
                               links=engine.schedule.links())
    engine.schedule.validate(conflicts)  # raises on violation
    for flow in engine.carried_flows:
        assert all(engine.alive.has_link(l) for l in flow.route)
        if flow.delay_budget_s is not None:
            assert (path_delay_slots(engine.schedule, flow.route)
                    <= engine.budget_slots(flow))


class TestInstall:
    def test_initial_solve(self, grid33):
        engine = make_engine(grid33)
        outcome = engine.install([gateway_flow("f1", 8),
                                  gateway_flow("f2", 5)])
        assert outcome.feasible and outcome.strategy == "resolve"
        assert engine.version == 1
        assert len(engine.carried_flows) == 2
        assert_valid(engine)

    def test_install_twice_rejected(self, grid33):
        engine = make_engine(grid33)
        engine.install([gateway_flow("f1", 8)])
        with pytest.raises(ConfigurationError, match="once"):
            engine.install([gateway_flow("f2", 5)])

    def test_apply_before_install_rejected(self, grid33):
        engine = make_engine(grid33)
        with pytest.raises(ConfigurationError, match="install"):
            engine.apply(FaultEvent(1.0, "link_down", link=(0, 1)))


class TestLinkDown:
    def test_redundant_link_failure_repairs_locally(self, grid33):
        engine = make_engine(grid33)
        engine.install([gateway_flow("f1", 8), gateway_flow("f2", 2)])
        outcome = engine.apply(FaultEvent(1.0, "link_down", link=(0, 1)))
        assert outcome.feasible
        assert outcome.strategy == "local"
        assert outcome.ilp_probes == 0
        assert not engine.schedule.restrict([(0, 1), (1, 0)]).links()
        assert_valid(engine)

    def test_unaffected_flow_keeps_route(self, grid33):
        engine = make_engine(grid33)
        engine.install([gateway_flow("f1", 8), gateway_flow("f2", 2)])
        before = {f.name: f.route for f in engine.carried_flows}
        outcome = engine.apply(FaultEvent(1.0, "link_down", link=(0, 1)))
        after = {f.name: f.route for f in engine.carried_flows}
        # only flows whose route used the cut edge changed
        for name in after:
            if name not in outcome.rerouted:
                assert after[name] == before[name]

    def test_noop_on_repeated_event(self, grid33):
        engine = make_engine(grid33)
        engine.install([gateway_flow("f1", 8)])
        event = FaultEvent(1.0, "link_down", link=(0, 1))
        first = engine.apply(event)
        version = engine.version
        second = engine.apply(event)
        assert second.strategy == "noop"
        assert engine.version == version
        assert second.schedule.to_dict() == first.schedule.to_dict()

    def test_non_topology_event_is_noop(self, grid33):
        engine = make_engine(grid33)
        engine.install([gateway_flow("f1", 8)])
        outcome = engine.apply(
            FaultEvent(1.0, "link_loss", link=(0, 1), value=0.5))
        assert outcome.strategy == "noop"
        assert engine.version == 1


class TestNodeChurn:
    def test_dead_node_parks_its_flow(self, grid33):
        engine = make_engine(grid33)
        engine.install([gateway_flow("f1", 8), gateway_flow("f2", 4)])
        outcome = engine.apply(FaultEvent(1.0, "node_down", node=8))
        assert "f1" in outcome.parked
        assert engine.parked_flows == ["f1"]
        assert [f.name for f in engine.carried_flows] == ["f2"]
        assert_valid(engine)

    def test_recovery_readmits_parked_flow(self, grid33):
        engine = make_engine(grid33)
        engine.install([gateway_flow("f1", 8), gateway_flow("f2", 4)])
        engine.apply(FaultEvent(1.0, "node_down", node=8))
        outcome = engine.apply(FaultEvent(5.0, "node_up", node=8))
        assert "f1" in outcome.readmitted
        assert engine.parked_flows == []
        assert_valid(engine)

    def test_transit_node_crash_reroutes(self, grid33):
        engine = make_engine(grid33)
        engine.install([gateway_flow("f1", 8)])
        outcome = engine.apply(FaultEvent(1.0, "node_down", node=4))
        assert outcome.feasible
        assert "f1" in outcome.rerouted or not any(
            4 in link for f in engine.carried_flows for link in f.route)
        assert_valid(engine)

    def test_partition_parks_far_side(self, chain5):
        engine = make_engine(chain5)
        engine.install([gateway_flow("near", 1), gateway_flow("far", 4)])
        outcome = engine.apply(FaultEvent(1.0, "node_down", node=2))
        assert outcome.parked == ("far",)
        assert [f.name for f in engine.carried_flows] == ["near"]
        assert_valid(engine)


class TestResolveFallback:
    def test_chain_cut_forces_resolve_or_park(self, chain5):
        """On a chain there is no detour: the cut partitions the mesh."""
        engine = make_engine(chain5)
        engine.install([gateway_flow("f1", 4)])
        outcome = engine.apply(FaultEvent(1.0, "link_down", link=(2, 3)))
        assert outcome.parked == ("f1",)
        assert engine.schedule.links() == []

    def test_peek_resolve_matches_feasibility(self, grid33):
        engine = make_engine(grid33)
        engine.install([gateway_flow("f1", 8), gateway_flow("f2", 2)])
        outcome = engine.apply(FaultEvent(1.0, "link_down", link=(0, 1)))
        baseline = engine.peek_resolve()
        assert baseline.feasible == outcome.feasible
        assert baseline.iterations >= 1

    def test_peek_resolve_does_not_mutate(self, grid33):
        engine = make_engine(grid33)
        engine.install([gateway_flow("f1", 8)])
        before = engine.schedule.to_dict()
        engine.peek_resolve(dead_edges=frozenset({(0, 1)}))
        assert engine.schedule.to_dict() == before
        assert engine.dead_edges == frozenset()


class TestInjectorIntegration:
    def test_engine_as_injector_listener(self, grid33):
        engine = make_engine(grid33)
        engine.install([gateway_flow("f1", 8)])
        plan = FaultPlan.scripted([
            FaultEvent(1.0, "link_down", link=(0, 1)),
            FaultEvent(2.0, "link_down", link=(0, 3)),
            FaultEvent(3.0, "link_up", link=(0, 1)),
        ], grid33)
        injector = FaultInjector(plan, grid33, listeners=[engine])
        injector.run_plan()
        assert engine.dead_edges == frozenset({(0, 3)})
        assert len(engine.history) >= 4  # install + 3 events
        assert_valid(engine)
