"""DCF saturation behaviour: coarse validation against known results.

Bianchi-style saturation analysis for 802.11b DCF with ~1000-byte frames
puts aggregate throughput in the 5-7 Mb/s band for a handful of stations,
degrading slowly as contention grows.  The simulator will not match the
analysis exactly (we simplify: always-backoff, no EIFS), but it must land
in the right band and show the right monotonicity -- this pins the
baseline the paper compares against to reality.
"""

import itertools

import pytest

from repro.dot11.dcf import DcfMac
from repro.dot11.params import DOT11B_PARAMS
from repro.phy.channel import BroadcastChannel
from repro.sim.engine import Simulator
from repro.sim.random import RngRegistry
from repro.sim.trace import Trace
from repro.net.topology import from_edges

FRAME_BITS = 8000  # 1000-byte payloads
DURATION_S = 2.0


def single_cell(num_stations):
    """Hub (0) + stations, everyone in range of everyone (Bianchi's cell)."""
    nodes = range(num_stations + 1)
    return from_edges(itertools.combinations(nodes, 2), name="cell")


def saturation_throughput(num_stations, seed=7):
    """Saturated stations in a single cell, all sending to node 0."""
    topology = single_cell(num_stations)
    sim = Simulator()
    trace = Trace(enabled=False)
    channel = BroadcastChannel(sim, topology, DOT11B_PARAMS.phy, trace)
    rngs = RngRegistry(seed=seed)
    delivered_bits = [0]

    def deliver(node, payload):
        if node == 0:
            delivered_bits[0] += FRAME_BITS

    macs = {node: DcfMac(sim, channel, node, DOT11B_PARAMS,
                         rngs.stream(f"dcf/{node}"), deliver, trace)
            for node in topology.nodes}

    def refill():
        for station in range(1, num_stations + 1):
            mac = macs[station]
            while mac.queue_length < 50:
                mac.send(0, "payload", FRAME_BITS)
        if sim.now < DURATION_S:
            sim.schedule(0.01, refill)

    refill()
    sim.run(until=DURATION_S)
    return delivered_bits[0] / DURATION_S


@pytest.mark.slow
def test_single_station_throughput_matches_cycle_analysis():
    # one station, no contention: throughput = payload / (DIFS + mean
    # backoff (15.5 slots) + data airtime + SIFS + ACK at 1 Mb/s)
    # = 8000 bits / ~1.62 ms ~= 4.9 Mb/s for 1000 B at 11 Mb/s with the
    # long preamble on both data and ACK
    throughput = saturation_throughput(1)
    assert 4.3e6 < throughput < 5.5e6


@pytest.mark.slow
def test_small_population_lands_in_bianchi_band():
    # small populations slightly beat one station (backoff overlaps
    # across contenders, collisions still rare): the Bianchi peak
    throughput = saturation_throughput(5)
    assert 4.5e6 < throughput < 6.0e6
    assert throughput > saturation_throughput(1)


@pytest.mark.slow
def test_throughput_degrades_gracefully_with_contention():
    peak = saturation_throughput(5)
    many = saturation_throughput(12)
    assert many < peak
    # single-cell CSMA degrades slowly past the peak (no hidden terminals)
    assert many > 0.7 * peak


@pytest.mark.slow
def test_airtime_fairness_across_stations():
    """Stations with identical parameters get statistically similar
    delivery shares under saturation."""
    num_stations = 4
    topology = single_cell(num_stations)
    sim = Simulator()
    trace = Trace(enabled=False)
    channel = BroadcastChannel(sim, topology, DOT11B_PARAMS.phy, trace)
    rngs = RngRegistry(seed=3)
    per_station = {i: 0 for i in range(1, num_stations + 1)}

    def deliver(node, payload):
        if node == 0:
            per_station[payload] += 1

    macs = {node: DcfMac(sim, channel, node, DOT11B_PARAMS,
                         rngs.stream(f"dcf/{node}"), deliver, trace)
            for node in topology.nodes}

    def refill():
        for station in range(1, num_stations + 1):
            mac = macs[station]
            while mac.queue_length < 20:
                mac.send(0, station, FRAME_BITS)
        if sim.now < DURATION_S:
            sim.schedule(0.05, refill)

    refill()
    sim.run(until=DURATION_S)
    counts = list(per_station.values())
    assert min(counts) > 0
    assert max(counts) < 2.5 * min(counts)
