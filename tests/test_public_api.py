"""Public API surface checks."""

import importlib
import json
import pathlib

import pytest

import repro

SURFACE_SNAPSHOT = pathlib.Path(__file__).parent / "data" / "public_api_surface.json"


def test_version():
    assert repro.__version__


@pytest.mark.parametrize("name", sorted(repro.__all__))
def test_root_exports_resolve(name):
    assert getattr(repro, name) is not None


@pytest.mark.parametrize("module_name", [
    "repro.core", "repro.sim", "repro.phy", "repro.dot11", "repro.mesh16",
    "repro.net", "repro.overlay", "repro.traffic", "repro.analysis",
    "repro.faults",
])
def test_subpackage_all_exports_resolve(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        assert getattr(module, name) is not None, f"{module_name}.{name}"


def test_quickstart_snippet_from_docstring():
    """The module docstring's quickstart must actually run."""
    from repro import Flow, Scenario, chain_topology

    scenario = Scenario(
        topology=chain_topology(6),
        flows=[Flow("voip0", src=0, dst=5, rate_bps=80_000,
                    delay_budget_s=0.1)])
    result = scenario.route().schedule()
    assert result.feasible
    assert result.slots >= 1
    assert result.schedule is not None


def test_public_api_surface_is_frozen():
    """Every public name and signature matches the reviewed snapshot.

    A failure here means the public surface changed.  If the change is
    intentional, regenerate the snapshot (see tests/api_surface.py) and
    commit it alongside the code; the diff is the API review.
    """
    from tests.api_surface import build_surface

    frozen = json.loads(SURFACE_SNAPSHOT.read_text())
    live = build_surface()

    for module, names in sorted(frozen.items()):
        live_names = live.get(module, {})
        missing = sorted(set(names) - set(live_names))
        assert not missing, f"{module}: public names removed: {missing}"
        for name, entry in sorted(names.items()):
            assert live_names[name] == entry, (
                f"{module}.{name} changed: frozen {entry!r} "
                f"!= live {live_names[name]!r}")
    for module, names in sorted(live.items()):
        added = sorted(set(names) - set(frozen.get(module, {})))
        assert not added, (
            f"{module}: new public names {added} not in the snapshot -- "
            "regenerate tests/data/public_api_surface.json")


def test_exceptions_form_a_hierarchy():
    from repro import errors

    for name in ("ConfigurationError", "SimulationError",
                 "SchedulingError", "RoutingError"):
        assert issubclass(getattr(errors, name), errors.ReproError)
    assert issubclass(errors.InfeasibleScheduleError,
                      errors.SchedulingError)
    assert issubclass(errors.SolverError, errors.SchedulingError)
    assert issubclass(errors.AdmissionError, errors.SchedulingError)
