"""Public API surface checks."""

import importlib

import pytest

import repro


def test_version():
    assert repro.__version__


@pytest.mark.parametrize("name", sorted(repro.__all__))
def test_root_exports_resolve(name):
    assert getattr(repro, name) is not None


@pytest.mark.parametrize("module_name", [
    "repro.core", "repro.sim", "repro.phy", "repro.dot11", "repro.mesh16",
    "repro.net", "repro.overlay", "repro.traffic", "repro.analysis",
    "repro.faults",
])
def test_subpackage_all_exports_resolve(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        assert getattr(module, name) is not None, f"{module_name}.{name}"


def test_quickstart_snippet_from_docstring():
    """The module docstring's quickstart must actually run."""
    from repro import (Flow, FlowSet, chain_topology, conflict_graph,
                       default_frame_config, minimum_slots, route_all)

    topo = chain_topology(6)
    flows = route_all(topo, FlowSet([
        Flow("voip0", src=0, dst=5, rate_bps=80_000,
             delay_budget_s=0.1)]))
    frame = default_frame_config()
    demands = flows.link_demands(frame.frame_duration_s,
                                 frame.data_slot_capacity_bits)
    result = minimum_slots(conflict_graph(topo), demands,
                           frame_slots=frame.data_slots)
    assert result.feasible
    assert result.result.schedule is not None


def test_exceptions_form_a_hierarchy():
    from repro import errors

    for name in ("ConfigurationError", "SimulationError",
                 "SchedulingError", "RoutingError"):
        assert issubclass(getattr(errors, name), errors.ReproError)
    assert issubclass(errors.InfeasibleScheduleError,
                      errors.SchedulingError)
    assert issubclass(errors.SolverError, errors.SchedulingError)
    assert issubclass(errors.AdmissionError, errors.SchedulingError)
