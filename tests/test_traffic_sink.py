"""Flow sinks."""

import pytest

from repro.net.packet import Packet
from repro.traffic.sink import FlowSink, SinkRegistry


def packet(seq, created=0.0):
    return Packet(flow="f", seq=seq, size_bits=100, created_s=created,
                  route=((0, 1),))


class TestFlowSink:
    def test_records_deliveries(self):
        sink = FlowSink("f")
        sink.record(packet(0, created=1.0), 1.5)
        sink.record(packet(1, created=2.0), 2.7)
        assert sink.received == 2
        assert sink.delays() == pytest.approx([0.5, 0.7])

    def test_duplicate_sequence_ignored(self):
        sink = FlowSink("f")
        sink.record(packet(0), 1.0)
        sink.record(packet(0), 2.0)
        assert sink.received == 1

    def test_qos_summary(self):
        sink = FlowSink("f")
        for i in range(10):
            sink.record(packet(i, created=float(i)), i + 0.05)
        qos = sink.qos(sent=12)
        assert qos.received == 10
        assert qos.sent == 12
        assert qos.mean_delay_s == pytest.approx(0.05)

    def test_warmup_excluded_from_delay_but_not_loss(self):
        sink = FlowSink("f")
        sink.record(packet(0, created=0.1), 5.0)   # cold start outlier
        sink.record(packet(1, created=2.0), 2.05)
        qos = sink.qos(sent=2, warmup_s=1.0)
        assert qos.received == 2  # loss accounting keeps both
        assert qos.mean_delay_s == pytest.approx(0.05)


class TestSinkRegistry:
    def test_sink_created_on_demand(self):
        registry = SinkRegistry()
        sink = registry.sink("a")
        assert registry.sink("a") is sink
        assert registry.get("missing") is None

    def test_on_delivered_routes_by_flow(self):
        registry = SinkRegistry()
        p1 = Packet(flow="a", seq=0, size_bits=1, created_s=0.0,
                    route=((0, 1),))
        p2 = Packet(flow="b", seq=0, size_bits=1, created_s=0.0,
                    route=((0, 1),))
        registry.on_delivered(p1, 1.0)
        registry.on_delivered(p2, 2.0)
        assert registry.sink("a").received == 1
        assert registry.sink("b").received == 1
        assert registry.flows() == ["a", "b"]
