"""Control-plane opportunity roster."""

import pytest

from repro.errors import ConfigurationError
from repro.mesh16.frame import default_frame_config
from repro.mesh16.network import ControlPlane
from repro.net.topology import chain_topology, grid_topology


def plane(topology=None, gateway=0):
    return ControlPlane(topology or chain_topology(5), gateway,
                        default_frame_config())


class TestRoster:
    def test_gateway_speaks_first(self):
        cp = plane()
        assert cp.owner(0, 0) == 0

    def test_roster_ordered_by_depth(self):
        cp = plane(grid_topology(3, 3), gateway=4)
        depths = [cp.depth(n) for n in cp.roster]
        assert depths == sorted(depths)
        assert cp.roster[0] == 4

    def test_all_nodes_get_turns(self):
        cp = plane()
        owners = {cp.owner(f, s) for f in range(3)
                  for s in range(4)}
        assert owners == set(range(5))

    def test_roster_cycles(self):
        cp = plane()  # 5 nodes, 4 control slots/frame
        # opportunity 5 (frame 1, slot 1) wraps to the roster start
        assert cp.owner(1, 1) == cp.owner(0, 0)

    def test_invalid_slot_rejected(self):
        with pytest.raises(ConfigurationError):
            plane().owner(0, 4)


class TestNextOpportunity:
    def test_gateway_first_opportunity(self):
        cp = plane()
        assert cp.next_opportunity(0, from_frame=0) == (0, 0)

    def test_opportunity_at_or_after_frame(self):
        cp = plane()
        for node in range(5):
            frame, slot = cp.next_opportunity(node, from_frame=2)
            assert frame >= 2
            assert cp.owner(frame, slot) == node

    def test_every_node_within_one_cycle(self):
        cp = plane()
        cycle_frames = -(-len(cp.roster) // 4)  # ceil
        for node in range(5):
            frame, ____ = cp.next_opportunity(node, from_frame=10)
            assert frame < 10 + cycle_frames + 1

    def test_unknown_node(self):
        with pytest.raises(ConfigurationError):
            plane().next_opportunity(99, 0)


class TestTree:
    def test_parent_relation(self):
        cp = plane()
        assert cp.parent(0) is None
        assert cp.parent(3) == 2

    def test_depths(self):
        cp = plane()
        assert cp.depth(0) == 0
        assert cp.depth(4) == 4
