"""Routing: shortest paths and gateway trees."""

import pytest

from repro.errors import RoutingError
from repro.net.flows import Flow, FlowSet
from repro.net.routing import (
    gateway_tree,
    route_all,
    route_on_tree,
    shortest_path_route,
)


class TestShortestPath:
    def test_chain_route(self, chain5):
        route = shortest_path_route(chain5, 0, 4)
        assert route == [(0, 1), (1, 2), (2, 3), (3, 4)]

    def test_reverse_route(self, chain5):
        route = shortest_path_route(chain5, 4, 1)
        assert route == [(4, 3), (3, 2), (2, 1)]

    def test_min_hop_on_grid(self, grid33):
        route = shortest_path_route(grid33, 0, 8)
        assert len(route) == 4

    def test_deterministic_tie_breaking(self, grid33):
        # both (0,1,2,5,8) and (0,3,6,7,8) are min-hop; BFS with sorted
        # expansion must always return the lexicographically smallest
        route1 = shortest_path_route(grid33, 0, 8)
        route2 = shortest_path_route(grid33, 0, 8)
        assert route1 == route2
        assert route1[0] == (0, 1)

    def test_same_endpoints_rejected(self, chain5):
        with pytest.raises(RoutingError):
            shortest_path_route(chain5, 2, 2)

    def test_unknown_endpoint_rejected(self, chain5):
        with pytest.raises(RoutingError):
            shortest_path_route(chain5, 0, 99)


class TestRouteAll:
    def test_routes_every_flow(self, grid33):
        flows = FlowSet([
            Flow("a", 0, 8, rate_bps=1000),
            Flow("b", 2, 6, rate_bps=1000),
        ])
        routed = route_all(grid33, flows)
        assert all(f.is_routed for f in routed)
        assert routed.get("a").hops == 4

    def test_preserves_existing_routes(self, chain5):
        pre = Flow("a", 0, 2, rate_bps=1000).with_route([(0, 1), (1, 2)])
        routed = route_all(chain5, FlowSet([pre]))
        assert routed.get("a").route == ((0, 1), (1, 2))


class TestGatewayTree:
    def test_chain_tree_is_the_chain(self, chain5):
        tree = gateway_tree(chain5, 0)
        assert set(tree.edges) == {(0, 1), (1, 2), (2, 3), (3, 4)}

    def test_every_node_reached(self, grid33):
        tree = gateway_tree(grid33, 4)
        assert tree.number_of_nodes() == 9
        assert tree.number_of_edges() == 8

    def test_parents_are_min_hop(self, grid33):
        tree = gateway_tree(grid33, 0)
        # node 4 (centre) is 2 hops from gateway 0; its parent must be a
        # 1-hop node (1 or 3), deterministically the smallest: 1
        assert list(tree.predecessors(4)) == [1]

    def test_unknown_gateway_rejected(self, chain5):
        with pytest.raises(RoutingError):
            gateway_tree(chain5, 42)


class TestRouteOnTree:
    def test_uplink_route(self, grid33):
        tree = gateway_tree(grid33, 0)
        route = route_on_tree(tree, 0, 8, 0)
        assert route[0][0] == 8
        assert route[-1][1] == 0

    def test_downlink_route(self, grid33):
        tree = gateway_tree(grid33, 0)
        route = route_on_tree(tree, 0, 0, 8)
        assert route[0][0] == 0
        assert route[-1][1] == 8

    def test_cross_route_goes_through_lca(self, grid33):
        tree = gateway_tree(grid33, 0)
        route = route_on_tree(tree, 0, 2, 6)
        nodes = [route[0][0]] + [b for ____, b in route]
        assert nodes[0] == 2
        assert nodes[-1] == 6
        # path is contiguous
        for (____, mid), (nxt, ____) in zip(route, route[1:]):
            assert mid == nxt

    def test_lca_short_circuit(self, chain5):
        tree = gateway_tree(chain5, 0)
        # 3 -> 2: LCA is 2 itself; route must be the single link (3, 2),
        # not a detour via the gateway
        assert route_on_tree(tree, 0, 3, 2) == [(3, 2)]

    def test_same_endpoints_rejected(self, chain5):
        tree = gateway_tree(chain5, 0)
        with pytest.raises(RoutingError):
            route_on_tree(tree, 0, 1, 1)

    def test_unknown_node_rejected(self, chain5):
        tree = gateway_tree(chain5, 0)
        with pytest.raises(RoutingError):
            route_on_tree(tree, 0, 1, 77)
