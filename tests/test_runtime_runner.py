"""Experiment-level orchestration: sharding, merging, resume."""

import pytest

from repro.analysis.experiments import ALL_EXPERIMENTS
from repro.runtime.cache import ResultCache
from repro.runtime.ledger import DEFAULT_LEDGER_NAME, RunLedger
from repro.runtime.runner import dedupe_ids, run_experiments


def test_dedupe_ids_preserves_order():
    assert dedupe_ids(["e2", "E4", "E2", "e4", "E1"]) == ["E2", "E4", "E1"]


def test_sharded_experiment_matches_direct_call(tmp_path):
    direct = ALL_EXPERIMENTS["E9"]()
    outcomes = run_experiments(["E9"], jobs=1,
                               cache_dir=str(tmp_path / "c"))
    assert len(outcomes) == 1
    outcome = outcomes[0]
    assert outcome.ok
    assert outcome.shards == 6  # one per slot duration
    assert outcome.result.table() == direct.table()


def test_parallel_table_identical_to_serial(tmp_path):
    serial = run_experiments(["E9"], jobs=1, use_cache=False,
                             cache_dir=str(tmp_path / "a"))
    parallel = run_experiments(["E9"], jobs=3, use_cache=False,
                               cache_dir=str(tmp_path / "b"))
    assert serial[0].result.table() == parallel[0].result.table()


def test_second_run_served_from_cache(tmp_path):
    cache_dir = str(tmp_path / "c")
    cold = run_experiments(["E9"], jobs=1, cache_dir=cache_dir)
    warm = run_experiments(["E9"], jobs=1, cache_dir=cache_dir)
    assert not cold[0].cached
    assert warm[0].cached
    assert warm[0].result.table() == cold[0].result.table()


def test_failure_isolated_per_experiment(tmp_path, monkeypatch):
    def explode(**kwargs):
        raise RuntimeError("synthetic experiment failure")

    monkeypatch.setitem(ALL_EXPERIMENTS, "E9", explode)
    outcomes = run_experiments(["E9", "E3"], jobs=1, use_cache=False,
                               cache_dir=str(tmp_path), retries=0)
    by_id = {o.experiment: o for o in outcomes}
    assert by_id["E9"].outcome == "failed"
    assert "synthetic experiment failure" in by_id["E9"].error
    assert by_id["E3"].ok


def test_ledger_written_per_shard(tmp_path):
    cache_dir = tmp_path / "c"
    run_experiments(["E9"], jobs=1, cache_dir=str(cache_dir))
    entries = RunLedger(cache_dir / DEFAULT_LEDGER_NAME).entries()
    assert len(entries) == 6
    assert all(e["target"] == "E9" for e in entries)
    assert all(e["outcome"] == "ok" for e in entries)


def test_resume_skips_previously_completed_work(tmp_path, monkeypatch):
    cache_dir = str(tmp_path / "c")
    # First run completes and ledgers E9.
    first = run_experiments(["E9"], jobs=1, cache_dir=cache_dir)
    assert first[0].ok
    # The cache is lost but the ledger survives.
    ResultCache(cache_dir).clear()

    import functools

    calls = []
    real = ALL_EXPERIMENTS["E9"]

    @functools.wraps(real)
    def counting(**kwargs):
        calls.append(kwargs)
        return real(**kwargs)

    monkeypatch.setitem(ALL_EXPERIMENTS, "E9", counting)
    resumed = run_experiments(["E9"], jobs=1, cache_dir=cache_dir,
                              resume=True)
    assert resumed[0].outcome == "skipped"
    assert calls == []  # nothing recomputed

    # Without --resume the lost work is simply recomputed.
    recomputed = run_experiments(["E9"], jobs=1, cache_dir=cache_dir)
    assert recomputed[0].ok
    assert len(calls) == 6


def test_on_experiment_callback_order_and_indices(tmp_path):
    seen = []
    run_experiments(["E9", "E3"], jobs=1, cache_dir=str(tmp_path),
                    on_experiment=lambda i, o: seen.append(
                        (i, o.experiment, o.ok)))
    assert seen == [(0, "E9", True), (1, "E3", True)]
