"""Result cache: round-trips, misses, invalidation."""

import pytest

from repro import obs
from repro.analysis.experiments import ALL_EXPERIMENTS, ExperimentResult
from repro.runtime.cache import ResultCache
from repro.runtime.tasks import make_task


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache", version="1.0-test",
                       fingerprint="fp0")


def test_miss_on_empty_cache(cache):
    assert cache.get(make_task("E9")) is None
    assert len(cache) == 0


def test_mapping_round_trip(cache):
    task = make_task("tests.runtime_helpers:add", {"a": 1, "b": 2})
    cache.put(task, {"loss": 0.25, "delay_ms": 3.5}, wall_s=1.25)
    entry = cache.get(task)
    assert entry.value == {"loss": 0.25, "delay_ms": 3.5}
    assert entry.wall_s == 1.25


def test_experiment_result_round_trips_table_exactly(cache):
    result = ALL_EXPERIMENTS["E9"]()
    task = make_task("E9")
    cache.put(task, result, wall_s=0.1)
    loaded = cache.get(task).value
    assert isinstance(loaded, ExperimentResult)
    assert loaded.table() == result.table()
    assert loaded.rows == result.rows


def test_different_params_miss(cache):
    cache.put(make_task("E9", {"guard_us": 60.0}), {"x": 1})
    assert cache.get(make_task("E9", {"guard_us": 30.0})) is None


def test_version_bump_invalidates(tmp_path):
    old = ResultCache(tmp_path, version="1", fingerprint="fp")
    task = make_task("E9")
    old.put(task, {"x": 1})
    assert old.get(task).value == {"x": 1}
    bumped = ResultCache(tmp_path, version="2", fingerprint="fp")
    assert bumped.get(task) is None


def test_source_fingerprint_change_invalidates(tmp_path):
    before = ResultCache(tmp_path, version="1", fingerprint="aaaa")
    task = make_task("E9")
    before.put(task, {"x": 1})
    after = ResultCache(tmp_path, version="1", fingerprint="bbbb")
    assert after.get(task) is None
    # and the old view still hits -- entries are content-addressed
    assert before.get(task).value == {"x": 1}


def test_explicit_invalidate_and_clear(cache):
    task = make_task("E9")
    cache.put(task, {"x": 1})
    assert cache.invalidate(task) is True
    assert cache.get(task) is None
    assert cache.invalidate(task) is False

    cache.put(make_task("E9"), {"x": 1})
    cache.put(make_task("E4"), {"y": 2})
    assert cache.clear() == 2
    assert len(cache) == 0


def test_uncacheable_value_rejected(cache):
    with pytest.raises(ValueError):
        cache.put(make_task("E9"), object())


def test_corrupt_entry_reads_as_miss(cache, tmp_path):
    task = make_task("E9")
    key = cache.put(task, {"x": 1})
    path = cache.results_dir / f"{key}.json"
    path.write_text("{ not json")
    assert cache.get(task) is None


def test_corrupt_entry_quarantined_and_recomputable(cache):
    task = make_task("E9")
    key = cache.put(task, {"x": 1})
    path = cache.results_dir / f"{key}.json"
    path.write_text("{ not json")
    with obs.use_registry(obs.MetricsRegistry()) as registry:
        assert cache.get(task) is None
    # The damaged file moved aside -- the slot is free for a re-run...
    assert not path.exists()
    assert (cache.quarantine_dir / f"{key}.json").read_text() == "{ not json"
    counters = registry.snapshot()["counters"]
    assert counters["runtime.cache.quarantined"] == 1
    # ...and a recompute stores and serves a fresh entry.
    cache.put(task, {"x": 2})
    assert cache.get(task).value == {"x": 2}


def test_quarantine_keeps_every_damaged_copy(cache):
    task = make_task("E9")
    key = cache.put(task, {"x": 1})
    path = cache.results_dir / f"{key}.json"
    for generation in ("first", "second"):
        path.write_text(f"{{ damaged {generation}")
        assert cache.get(task) is None
        cache.put(task, {"x": 1})
    names = sorted(p.name for p in cache.quarantine_dir.iterdir())
    assert names == [f"{key}.json", f"{key}.json.1"]


def test_wrong_shape_payload_quarantined(cache):
    task = make_task("E9")
    key = cache.put(task, {"x": 1})
    path = cache.results_dir / f"{key}.json"
    path.write_text('[1, 2, 3]')  # valid JSON, wrong structure
    assert cache.get(task) is None
    assert not path.exists()
    assert (cache.quarantine_dir / f"{key}.json").exists()


def test_stale_version_is_miss_but_not_quarantined(tmp_path):
    old = ResultCache(tmp_path, version="1", fingerprint="fp")
    task = make_task("E9")
    old.put(task, {"x": 1})
    bumped = ResultCache(tmp_path, version="2", fingerprint="fp")
    assert bumped.get(task) is None
    # A stale-but-well-formed entry is not damage: nothing moves.
    assert not bumped.quarantine_dir.exists()


def test_corrupt_metrics_sidecar_quarantined(cache):
    task = make_task("E9")
    key = cache.put_metrics(task, {"counters": {"a": 1}})
    path = cache.results_dir / f"{key}.metrics.json"
    path.write_text("garbage")
    assert cache.get_metrics(task) is None
    assert not path.exists()
    assert (cache.quarantine_dir / f"{key}.metrics.json").exists()


# ---------------------------------------------------------------------------
# Concurrent writers
# ---------------------------------------------------------------------------

def test_filelock_mutual_exclusion_and_contention_counter(tmp_path):
    from repro.runtime.cache import FileLock

    path = tmp_path / "key.lock"
    holder = FileLock(path)
    assert holder.acquire() is True
    with obs.use_registry(obs.MetricsRegistry()) as registry:
        loser = FileLock(path, timeout_s=0.05, poll_s=0.01)
        assert loser.acquire() is False
        counters = registry.snapshot()["counters"]
    assert counters["runtime.cache.lock_contended"] == 1
    holder.release()
    assert not path.exists()
    retaken = FileLock(path, timeout_s=0.05)
    assert retaken.acquire() is True
    retaken.release()


def test_stale_lock_from_dead_writer_is_broken(tmp_path):
    import os

    from repro.runtime.cache import FileLock

    path = tmp_path / "key.lock"
    # A lockfile naming a pid that no longer exists: provably dead.
    dead_pid = 2 ** 22 + 1234  # beyond default pid_max
    path.write_text(f"{dead_pid}\n")
    with obs.use_registry(obs.MetricsRegistry()) as registry:
        lock = FileLock(path, timeout_s=0.5, poll_s=0.01)
        assert lock.acquire() is True
        counters = registry.snapshot()["counters"]
    assert counters["runtime.cache.stale_locks_broken"] == 1
    assert path.read_text().strip() == str(os.getpid())
    lock.release()


def test_old_lockfile_is_broken_by_age(tmp_path):
    import os
    import time as time_mod

    from repro.runtime.cache import FileLock

    path = tmp_path / "key.lock"
    path.write_text(f"{os.getpid()}\n")  # our own (live) pid...
    old = time_mod.time() - 3600.0  # ...but an hour-old file
    os.utime(path, (old, old))
    lock = FileLock(path, timeout_s=0.5, stale_s=60.0, poll_s=0.01)
    assert lock.acquire() is True
    lock.release()


def test_put_skips_write_when_lock_contended(cache, tmp_path):
    from repro.runtime.cache import FileLock

    task = make_task("tests.runtime_helpers:add", {"a": 5, "b": 5})
    key = cache.key_for(task)
    cache.lock_timeout_s = 0.05
    cache.results_dir.mkdir(parents=True, exist_ok=True)
    holder = FileLock(cache.results_dir / f"{key}.lock")
    assert holder.acquire()
    assert cache.put(task, 10) == key  # returns the key, writes nothing
    holder.release()
    assert cache.get(task) is None
    cache.put(task, 10)  # lock free again: the write lands
    assert cache.get(task).value == 10


def test_two_processes_race_on_one_cache_dir(tmp_path):
    """Two sweeps over identical tasks share one cache directory.

    Every write races; per-key lockfiles plus atomic renames must leave
    a fully consistent cache -- no torn entries, no leftover locks.
    """
    import json
    import multiprocessing

    from tests.runtime_helpers import cache_writer_sweep

    cache_dir = str(tmp_path / "shared")
    context = multiprocessing.get_context("fork")
    with context.Pool(2) as pool:
        counts = pool.starmap(cache_writer_sweep,
                              [(cache_dir, 8, 5), (cache_dir, 8, 5)])
    assert counts == [8, 8]

    shared = ResultCache(cache_dir)
    from repro.runtime.tasks import make_task as mk
    tasks = [mk("repro.runtime.chaos:chaos_probe",
                {"x": x, "seed": 5}) for x in range(8)]
    values = [shared.get(task) for task in tasks]
    assert all(entry is not None for entry in values)
    # Every on-disk entry parses (no torn writes survived the race).
    entry_files = list(shared.results_dir.glob("*.json"))
    assert len(entry_files) == 8
    for path in entry_files:
        json.loads(path.read_text())
    assert not list(shared.results_dir.glob("*.lock"))
    assert not shared.quarantine_dir.exists() or \
        not any(shared.quarantine_dir.iterdir())
