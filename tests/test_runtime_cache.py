"""Result cache: round-trips, misses, invalidation."""

import pytest

from repro import obs
from repro.analysis.experiments import ALL_EXPERIMENTS, ExperimentResult
from repro.runtime.cache import ResultCache
from repro.runtime.tasks import make_task


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache", version="1.0-test",
                       fingerprint="fp0")


def test_miss_on_empty_cache(cache):
    assert cache.get(make_task("E9")) is None
    assert len(cache) == 0


def test_mapping_round_trip(cache):
    task = make_task("tests.runtime_helpers:add", {"a": 1, "b": 2})
    cache.put(task, {"loss": 0.25, "delay_ms": 3.5}, wall_s=1.25)
    entry = cache.get(task)
    assert entry.value == {"loss": 0.25, "delay_ms": 3.5}
    assert entry.wall_s == 1.25


def test_experiment_result_round_trips_table_exactly(cache):
    result = ALL_EXPERIMENTS["E9"]()
    task = make_task("E9")
    cache.put(task, result, wall_s=0.1)
    loaded = cache.get(task).value
    assert isinstance(loaded, ExperimentResult)
    assert loaded.table() == result.table()
    assert loaded.rows == result.rows


def test_different_params_miss(cache):
    cache.put(make_task("E9", {"guard_us": 60.0}), {"x": 1})
    assert cache.get(make_task("E9", {"guard_us": 30.0})) is None


def test_version_bump_invalidates(tmp_path):
    old = ResultCache(tmp_path, version="1", fingerprint="fp")
    task = make_task("E9")
    old.put(task, {"x": 1})
    assert old.get(task).value == {"x": 1}
    bumped = ResultCache(tmp_path, version="2", fingerprint="fp")
    assert bumped.get(task) is None


def test_source_fingerprint_change_invalidates(tmp_path):
    before = ResultCache(tmp_path, version="1", fingerprint="aaaa")
    task = make_task("E9")
    before.put(task, {"x": 1})
    after = ResultCache(tmp_path, version="1", fingerprint="bbbb")
    assert after.get(task) is None
    # and the old view still hits -- entries are content-addressed
    assert before.get(task).value == {"x": 1}


def test_explicit_invalidate_and_clear(cache):
    task = make_task("E9")
    cache.put(task, {"x": 1})
    assert cache.invalidate(task) is True
    assert cache.get(task) is None
    assert cache.invalidate(task) is False

    cache.put(make_task("E9"), {"x": 1})
    cache.put(make_task("E4"), {"y": 2})
    assert cache.clear() == 2
    assert len(cache) == 0


def test_uncacheable_value_rejected(cache):
    with pytest.raises(ValueError):
        cache.put(make_task("E9"), object())


def test_corrupt_entry_reads_as_miss(cache, tmp_path):
    task = make_task("E9")
    key = cache.put(task, {"x": 1})
    path = cache.results_dir / f"{key}.json"
    path.write_text("{ not json")
    assert cache.get(task) is None


def test_corrupt_entry_quarantined_and_recomputable(cache):
    task = make_task("E9")
    key = cache.put(task, {"x": 1})
    path = cache.results_dir / f"{key}.json"
    path.write_text("{ not json")
    with obs.use_registry(obs.MetricsRegistry()) as registry:
        assert cache.get(task) is None
    # The damaged file moved aside -- the slot is free for a re-run...
    assert not path.exists()
    assert (cache.quarantine_dir / f"{key}.json").read_text() == "{ not json"
    counters = registry.snapshot()["counters"]
    assert counters["runtime.cache.quarantined"] == 1
    # ...and a recompute stores and serves a fresh entry.
    cache.put(task, {"x": 2})
    assert cache.get(task).value == {"x": 2}


def test_quarantine_keeps_every_damaged_copy(cache):
    task = make_task("E9")
    key = cache.put(task, {"x": 1})
    path = cache.results_dir / f"{key}.json"
    for generation in ("first", "second"):
        path.write_text(f"{{ damaged {generation}")
        assert cache.get(task) is None
        cache.put(task, {"x": 1})
    names = sorted(p.name for p in cache.quarantine_dir.iterdir())
    assert names == [f"{key}.json", f"{key}.json.1"]


def test_wrong_shape_payload_quarantined(cache):
    task = make_task("E9")
    key = cache.put(task, {"x": 1})
    path = cache.results_dir / f"{key}.json"
    path.write_text('[1, 2, 3]')  # valid JSON, wrong structure
    assert cache.get(task) is None
    assert not path.exists()
    assert (cache.quarantine_dir / f"{key}.json").exists()


def test_stale_version_is_miss_but_not_quarantined(tmp_path):
    old = ResultCache(tmp_path, version="1", fingerprint="fp")
    task = make_task("E9")
    old.put(task, {"x": 1})
    bumped = ResultCache(tmp_path, version="2", fingerprint="fp")
    assert bumped.get(task) is None
    # A stale-but-well-formed entry is not damage: nothing moves.
    assert not bumped.quarantine_dir.exists()


def test_corrupt_metrics_sidecar_quarantined(cache):
    task = make_task("E9")
    key = cache.put_metrics(task, {"counters": {"a": 1}})
    path = cache.results_dir / f"{key}.metrics.json"
    path.write_text("garbage")
    assert cache.get_metrics(task) is None
    assert not path.exists()
    assert (cache.quarantine_dir / f"{key}.metrics.json").exists()
