"""Unit tests for repro.mobility.models: seeded, reproducible motion."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.mobility.models import (
    ConstantVelocityModel,
    RandomWaypointModel,
    _fold,
)
from repro.net.topology import grid_topology, random_disk_topology


# -- random waypoint -------------------------------------------------------


def test_rwp_same_seed_walks_identical_paths():
    a = RandomWaypointModel(6, 500.0, 12.0, 60.0, seed=7)
    b = RandomWaypointModel(6, 500.0, 12.0, 60.0, seed=7)
    for node in a.nodes:
        for t in (0.0, 1.5, 17.25, 60.0):
            assert a.position(node, t) == b.position(node, t)


def test_rwp_different_seeds_diverge():
    a = RandomWaypointModel(6, 500.0, 12.0, 60.0, seed=7)
    b = RandomWaypointModel(6, 500.0, 12.0, 60.0, seed=8)
    assert any(a.position(n, 10.0) != b.position(n, 10.0)
               for n in a.nodes)


def test_rwp_start_layout_independent_of_speed():
    # every start is drawn before any leg, so t=0 depends only on
    # seed and node count -- the E20 sweep's arms share one layout
    slow = RandomWaypointModel(8, 400.0, 1.0, 30.0, seed=3)
    fast = RandomWaypointModel(8, 400.0, 30.0, 30.0, seed=3)
    for node in slow.nodes:
        assert slow.position(node, 0.0) == fast.position(node, 0.0)


def test_rwp_zero_speed_is_static():
    model = RandomWaypointModel(4, 300.0, 0.0, 45.0, seed=1)
    for node in model.nodes:
        assert model.position(node, 0.0) == model.position(node, 45.0)


def test_rwp_positions_stay_inside_field():
    model = RandomWaypointModel(5, 250.0, (5.0, 20.0), 90.0, seed=11)
    for node in model.nodes:
        for k in range(0, 91, 3):
            x, y = model.position(node, float(k))
            assert 0.0 <= x <= 250.0 and 0.0 <= y <= 250.0


def test_rwp_speed_actually_bounds_displacement():
    model = RandomWaypointModel(4, 800.0, 10.0, 60.0, seed=5)
    for node in model.nodes:
        x0, y0 = model.position(node, 20.0)
        x1, y1 = model.position(node, 21.0)
        assert math.hypot(x1 - x0, y1 - y0) <= 10.0 + 1e-9


def test_rwp_pause_holds_position_between_legs():
    model = RandomWaypointModel(1, 100.0, 50.0, 120.0, pause_s=5.0, seed=2)
    legs = model._segments[0]
    pauses = [s for s in legs if s[2] == s[3] and s[1] - s[0] == 5.0]
    assert pauses, "a 50 m/s node on a 100 m field must pause mid-horizon"


def test_rwp_absent_before_zero_and_unknown_node():
    model = RandomWaypointModel(3, 100.0, 5.0, 10.0, seed=0)
    assert model.position(0, -0.5) is None
    assert model.position(99, 1.0) is None


def test_rwp_rejects_bad_parameters():
    with pytest.raises(ConfigurationError):
        RandomWaypointModel(0, 100.0, 5.0, 10.0, seed=0)
    with pytest.raises(ConfigurationError):
        RandomWaypointModel(3, -1.0, 5.0, 10.0, seed=0)
    with pytest.raises(ConfigurationError):
        RandomWaypointModel(3, 100.0, (8.0, 2.0), 10.0, seed=0)
    with pytest.raises(ConfigurationError):
        RandomWaypointModel(3, 100.0, 5.0, 0.0, seed=0)
    with pytest.raises(ConfigurationError):
        RandomWaypointModel(3, 100.0, 5.0, 10.0, pause_s=-1.0, seed=0)


def test_rwp_from_topology_seeds_from_real_layout():
    topology = random_disk_topology(8, radio_range=180.0, area=400.0,
                                    seed=21)
    model = RandomWaypointModel.from_topology(topology, 10.0, 30.0, seed=4)
    assert model.nodes == tuple(topology.nodes)
    for node in model.nodes:
        assert model.position(node, 0.0) == topology.position(node)


def test_rwp_from_topology_requires_positions():
    topology = grid_topology(2, 2)
    topology.positions.clear()
    with pytest.raises(ConfigurationError):
        RandomWaypointModel.from_topology(topology, 5.0, 10.0, seed=0)


# -- constant velocity -----------------------------------------------------


def test_fold_reflects_like_billiard_walls():
    assert _fold(30.0, 100.0) == 30.0
    assert _fold(130.0, 100.0) == 70.0
    assert _fold(230.0, 100.0) == 30.0
    assert _fold(-30.0, 100.0) == 30.0


def test_constant_velocity_straight_line():
    model = ConstantVelocityModel({0: (0.0, 0.0)}, {0: (3.0, 4.0)}, 10.0)
    assert model.position(0, 2.0) == (6.0, 8.0)


def test_constant_velocity_bounces_off_field_walls():
    model = ConstantVelocityModel({0: (90.0, 50.0)}, {0: (10.0, 0.0)},
                                  10.0, area=100.0)
    x, _ = model.position(0, 3.0)  # would be 120 unbounded
    assert x == 80.0


def test_constant_velocity_absent_outside_horizon():
    model = ConstantVelocityModel({0: (0.0, 0.0)}, {0: (1.0, 0.0)}, 5.0)
    assert model.position(0, 5.5) is None
    assert model.position(1, 1.0) is None


def test_constant_velocity_rejects_missing_velocity():
    with pytest.raises(ConfigurationError):
        ConstantVelocityModel({0: (0.0, 0.0), 1: (1.0, 1.0)},
                              {0: (1.0, 0.0)}, 10.0)
    with pytest.raises(ConfigurationError):
        ConstantVelocityModel({}, {}, 10.0)
    with pytest.raises(ConfigurationError):
        ConstantVelocityModel({0: (0.0, 0.0)}, {0: (1.0, 0.0)}, 10.0,
                              area=0.0)
