"""Packet model."""

import pytest

from repro.errors import ConfigurationError
from repro.net.packet import Packet


def make_packet(**overrides):
    defaults = dict(flow="f", seq=0, size_bits=800, created_s=0.0,
                    route=((0, 1), (1, 2)))
    defaults.update(overrides)
    return Packet(**defaults)


def test_endpoints_derived_from_route():
    packet = make_packet()
    assert packet.src == 0
    assert packet.dst == 2


def test_current_link_advances():
    packet = make_packet()
    assert packet.current_link == (0, 1)
    packet.advance()
    assert packet.current_link == (1, 2)
    packet.advance()
    assert packet.current_link is None
    assert packet.delivered


def test_advance_past_destination_rejected():
    packet = make_packet(route=((0, 1),))
    packet.advance()
    with pytest.raises(ConfigurationError):
        packet.advance()


def test_empty_route_rejected():
    with pytest.raises(ConfigurationError):
        make_packet(route=())


def test_nonpositive_size_rejected():
    with pytest.raises(ConfigurationError):
        make_packet(size_bits=0)


def test_packet_ids_unique():
    ids = {make_packet(seq=i).packet_id for i in range(50)}
    assert len(ids) == 50
