"""Schedule serialization round-trips."""

import json

import pytest

from repro.core.schedule import Schedule, SlotBlock
from repro.errors import ConfigurationError, SchedulingError


def sample_schedule():
    return Schedule(16, {(0, 1): SlotBlock(0, 2),
                         (1, 2): SlotBlock(2, 1),
                         (4, 3): SlotBlock(5, 3)})


def test_round_trip_preserves_everything():
    original = sample_schedule()
    restored = Schedule.from_dict(original.to_dict())
    assert restored.frame_slots == original.frame_slots
    assert dict(restored.items()) == dict(original.items())


def test_json_serializable():
    text = json.dumps(sample_schedule().to_dict())
    restored = Schedule.from_dict(json.loads(text))
    assert dict(restored.items()) == dict(sample_schedule().items())


def test_empty_schedule():
    restored = Schedule.from_dict(Schedule(4).to_dict())
    assert restored.frame_slots == 4
    assert len(restored) == 0


def test_malformed_document_rejected():
    with pytest.raises(ConfigurationError, match="malformed"):
        Schedule.from_dict({"assignments": []})
    with pytest.raises(ConfigurationError, match="malformed"):
        Schedule.from_dict({"frame_slots": 8, "assignments": [{"tx": 0}]})


def test_duplicate_link_rejected():
    data = {"frame_slots": 8, "assignments": [
        {"tx": 0, "rx": 1, "start": 0, "length": 1},
        {"tx": 0, "rx": 1, "start": 2, "length": 1}]}
    with pytest.raises(ConfigurationError, match="duplicate"):
        Schedule.from_dict(data)


def test_out_of_frame_block_rejected():
    data = {"frame_slots": 4, "assignments": [
        {"tx": 0, "rx": 1, "start": 3, "length": 2}]}
    with pytest.raises(SchedulingError):
        Schedule.from_dict(data)
