"""Task model: content keys, resolution, sharding."""

import pytest

from repro.analysis.experiments import ALL_EXPERIMENTS
from repro.errors import ConfigurationError
from repro.runtime.tasks import (
    SHARD_AXES,
    make_task,
    merge_experiment_results,
    resolve_target,
    run_task,
    shard_experiment,
    source_fingerprint,
    task_key,
)

from tests import runtime_helpers


def test_key_stable_across_param_order():
    a = make_task("E9", {"guard_us": 60.0, "slot_durations_us": (300,)})
    b = make_task("E9", {"slot_durations_us": (300,), "guard_us": 60.0})
    assert task_key(a) == task_key(b)


def test_key_distinguishes_target_params_seed():
    base = make_task("E9", {"guard_us": 60.0})
    assert task_key(base) != task_key(make_task("E4", {"guard_us": 60.0}))
    assert task_key(base) != task_key(make_task("E9", {"guard_us": 30.0}))
    assert task_key(base) != task_key(make_task("E9", {"guard_us": 60.0},
                                                seed=3))


def test_key_folds_in_version_and_fingerprint():
    task = make_task("E9")
    assert task_key(task, version="1") != task_key(task, version="2")
    assert task_key(task, fingerprint="a") != task_key(task,
                                                       fingerprint="b")


def test_source_fingerprint_is_stable_within_process():
    assert source_fingerprint() == source_fingerprint()
    assert len(source_fingerprint()) == 16


def test_resolve_experiment_id_case_insensitive():
    assert resolve_target(make_task("e9")) is ALL_EXPERIMENTS["E9"]


def test_resolve_dotted_path():
    task = make_task("tests.runtime_helpers:add", {"a": 2, "b": 3})
    assert resolve_target(task) is runtime_helpers.add
    assert run_task(task) == 5


def test_callable_target_keeps_fn_and_gets_stable_name():
    task = make_task(runtime_helpers.add, {"a": 1, "b": 1})
    assert task.target == "tests.runtime_helpers:add"
    assert run_task(task) == 2


def test_seeded_task_receives_rng_registry():
    one = run_task(make_task(runtime_helpers.seed_echo, seed=7))
    two = run_task(make_task(runtime_helpers.seed_echo, seed=7))
    other = run_task(make_task(runtime_helpers.seed_echo, seed=8))
    assert one == two
    assert one != other


def test_unknown_targets_rejected():
    with pytest.raises(ConfigurationError):
        resolve_target(make_task("E99"))
    with pytest.raises(ConfigurationError):
        resolve_target(make_task("not-a-dotted-path"))
    with pytest.raises(ConfigurationError):
        make_task(1234)


def test_shard_axes_name_real_parameters():
    import inspect

    for exp_id, axis in SHARD_AXES.items():
        signature = inspect.signature(ALL_EXPERIMENTS[exp_id])
        assert axis in signature.parameters, (exp_id, axis)


def test_shard_expansion_covers_axis():
    tasks = shard_experiment("E9")
    values = [dict(t.params)["slot_durations_us"] for t in tasks]
    assert [v[0] for v in values] == [300, 400, 525, 800, 1200, 2000]
    assert all(len(v) == 1 for v in values)


def test_unshardable_experiment_is_one_task():
    tasks = shard_experiment("E7")
    assert len(tasks) == 1
    assert tasks[0].params == ()


def test_sharded_run_merges_to_serial_table():
    serial = ALL_EXPERIMENTS["E9"]()
    shards = [run_task(t) for t in shard_experiment("E9")]
    merged = merge_experiment_results(shards)
    assert merged.headers == serial.headers
    assert merged.rows == serial.rows
    assert merged.title == serial.title
    assert merged.table() == serial.table()


def test_label_mentions_target_params_and_seed():
    task = make_task("E9", {"guard_us": 60.0}, seed=3)
    assert "E9" in task.label
    assert "guard_us" in task.label
    assert "@s3" in task.label
