"""Min-delay ordering on scheduling trees."""

import pytest

from repro.core.conflict import conflict_graph
from repro.core.delay import order_wraps, path_wraps
from repro.core.ordering import schedule_from_order
from repro.core.tree_order import (
    adversarial_tree_order,
    min_delay_tree_order,
    naive_tree_order,
    tree_depths,
)
from repro.errors import ConfigurationError
from repro.net.routing import gateway_tree, route_on_tree
from repro.net.topology import binary_tree_topology, chain_topology, grid_topology


class TestTreeDepths:
    def test_chain_depths(self, chain5):
        tree = gateway_tree(chain5, 0)
        depths = tree_depths(tree, 0)
        assert depths == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_unknown_root_rejected(self, chain5):
        tree = gateway_tree(chain5, 0)
        with pytest.raises(ConfigurationError):
            tree_depths(tree, 99)

    def test_non_tree_rejected(self):
        import networkx as nx
        graph = nx.DiGraph([(0, 1), (0, 2), (1, 3), (2, 3)])
        with pytest.raises(ConfigurationError):
            tree_depths(graph, 0)


class TestMinDelayOrder:
    @pytest.mark.parametrize("topo_factory,gateway", [
        (lambda: chain_topology(6), 0),
        (lambda: binary_tree_topology(3), 0),
        (lambda: grid_topology(3, 3), 0),
        (lambda: grid_topology(3, 3), 4),
    ])
    def test_zero_wraps_on_all_tree_routes(self, topo_factory, gateway):
        """The ToN theorem: the order is wrap-free for EVERY tree route."""
        topology = topo_factory()
        tree = gateway_tree(topology, gateway)
        order = min_delay_tree_order(tree, gateway)
        nodes = topology.nodes
        for src in nodes:
            for dst in nodes:
                if src == dst:
                    continue
                route = route_on_tree(tree, gateway, src, dst)
                assert order_wraps(order, route) == 0, (src, dst)

    def test_covers_both_directions(self, chain5):
        tree = gateway_tree(chain5, 0)
        order = min_delay_tree_order(tree, 0)
        links = set(order.links())
        assert (1, 0) in links and (0, 1) in links
        assert len(links) == 2 * tree.number_of_edges()

    def test_uplinks_before_downlinks(self, btree2):
        tree = gateway_tree(btree2, 0)
        order = min_delay_tree_order(tree, 0)
        for parent, child in tree.edges:
            assert order.precedes((child, parent), (parent, child))

    def test_deeper_uplinks_first(self, chain5):
        tree = gateway_tree(chain5, 0)
        order = min_delay_tree_order(tree, 0)
        assert order.precedes((4, 3), (3, 2))
        assert order.precedes((3, 2), (1, 0))

    def test_schedule_realizes_one_frame_delay(self, chain8):
        tree = gateway_tree(chain8, 0)
        order = min_delay_tree_order(tree, 0)
        route = tuple((i + 1, i) for i in reversed(range(7)))  # 7 -> 0
        demands = {link: 1 for link in route}
        conflicts = conflict_graph(chain8, hops=2, links=demands.keys())
        schedule = schedule_from_order(conflicts, demands, 16, order)
        assert path_wraps(schedule, route) == 0


class TestBaselineOrders:
    def test_adversarial_wraps_every_hop(self, chain8):
        tree = gateway_tree(chain8, 0)
        order = adversarial_tree_order(tree, 0)
        uplink_route = tuple((i + 1, i) for i in reversed(range(7)))
        downlink_route = tuple((i, i + 1) for i in range(7))
        assert order_wraps(order, uplink_route) == 6
        assert order_wraps(order, downlink_route) == 6

    def test_naive_order_is_total_over_tree_links(self, btree2):
        tree = gateway_tree(btree2, 0)
        order = naive_tree_order(tree, 0)
        assert len(order.links()) == 2 * tree.number_of_edges()

    def test_adversarial_no_worse_possible(self, chain5):
        # h-hop route has at most h-1 consecutive pairs, so h-1 wraps is
        # the ceiling; adversarial hits it
        tree = gateway_tree(chain5, 0)
        order = adversarial_tree_order(tree, 0)
        route = tuple((i, i + 1) for i in range(4))
        assert order_wraps(order, route) == len(route) - 1
