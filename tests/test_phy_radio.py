"""PHY parameter sets and airtime math."""

import pytest

from repro.errors import ConfigurationError
from repro.phy.radio import DOT11A_6M, DOT11B_11M, DOT11G_54M, PhyParams
from repro.units import US


def test_airtime_includes_plcp():
    phy = PhyParams("t", data_rate_bps=1e6, basic_rate_bps=1e6,
                    plcp_overhead_s=100 * US)
    assert phy.airtime(1000) == pytest.approx(100e-6 + 1e-3)


def test_airtime_basic_rate():
    phy = DOT11B_11M
    slow = phy.airtime(112, basic_rate=True)
    fast = phy.airtime(112, basic_rate=False)
    assert slow > fast  # 1 Mb/s vs 11 Mb/s


def test_airtime_zero_bits_is_preamble_only():
    assert DOT11A_6M.airtime(0) == pytest.approx(20e-6)


def test_negative_bits_rejected():
    with pytest.raises(ConfigurationError):
        DOT11B_11M.airtime(-1)


def test_bits_in_inverts_airtime():
    phy = DOT11B_11M
    for duration in (300e-6, 500e-6, 1e-3):
        bits = phy.bits_in(duration)
        assert phy.airtime(bits) <= duration + 1e-12
        assert phy.airtime(bits + phy.data_rate_bps * 1e-6) > duration - 1e-6


def test_bits_in_too_short_returns_zero():
    assert DOT11B_11M.bits_in(100e-6) == 0  # below the 192 us preamble


def test_standard_profiles():
    assert DOT11B_11M.data_rate_bps == pytest.approx(11e6)
    assert DOT11B_11M.basic_rate_bps == pytest.approx(1e6)
    assert DOT11G_54M.data_rate_bps == pytest.approx(54e6)
    assert DOT11A_6M.plcp_overhead_s == pytest.approx(20e-6)


def test_invalid_params_rejected():
    with pytest.raises(ConfigurationError):
        PhyParams("bad", data_rate_bps=0, basic_rate_bps=1e6,
                  plcp_overhead_s=0)
    with pytest.raises(ConfigurationError):
        PhyParams("bad", data_rate_bps=1e6, basic_rate_bps=1e6,
                  plcp_overhead_s=-1e-6)


def test_g711_packet_airtime_sanity():
    # a 200 B VoIP packet + 34 B MAC header at 11 Mb/s with long preamble:
    # 192 us + 1872/11e6 ~= 362 us
    airtime = DOT11B_11M.airtime((200 + 34) * 8)
    assert 350e-6 < airtime < 380e-6
