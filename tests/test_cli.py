"""Command-line experiment runner."""

import pytest

from repro.__main__ import main


def test_list(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "E1" in out and "E14" in out


def test_runs_cheap_experiment(capsys):
    assert main(["E9"]) == 0
    out = capsys.readouterr().out
    assert "[E9]" in out
    assert "slot_us" in out


def test_case_insensitive(capsys):
    assert main(["e9"]) == 0
    assert "[E9]" in capsys.readouterr().out


def test_unknown_experiment(capsys):
    assert main(["E99"]) == 2
    assert "unknown" in capsys.readouterr().err


def test_no_args_is_usage_error(capsys):
    assert main([]) == 2


def test_report_written(tmp_path, capsys):
    path = tmp_path / "report.md"
    assert main(["E9", "--report", str(path)]) == 0
    text = path.read_text()
    assert text.startswith("# Experiment report")
    assert "## E9" in text
    assert "slot_us" in text
