"""Command-line experiment runner."""

import json

import pytest

from repro.__main__ import main
from repro.analysis.experiments import ALL_EXPERIMENTS


@pytest.fixture(autouse=True)
def isolated_cwd(tmp_path, monkeypatch):
    """Keep .repro_cache/ (default cache dir) inside the test sandbox."""
    monkeypatch.chdir(tmp_path)


def test_list(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "E1" in out and "E14" in out


def test_list_annotates_cache_status(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "[uncached]" in out and "[cached" not in out
    assert main(["E9"]) == 0
    capsys.readouterr()
    assert main(["--list"]) == 0
    lines = capsys.readouterr().out.splitlines()
    e9 = next(l for l in lines if l.lstrip().startswith("E9"))
    assert "[cached" in e9
    e1 = next(l for l in lines if l.lstrip().startswith("E1 "))
    assert "[uncached]" in e1


def test_list_no_cache_drops_annotations(capsys):
    assert main(["--list", "--no-cache"]) == 0
    out = capsys.readouterr().out
    assert "cached" not in out


def test_list_respects_cache_dir(tmp_path, capsys):
    assert main(["E9", "--cache-dir", str(tmp_path / "alt")]) == 0
    capsys.readouterr()
    assert main(["--list", "--cache-dir", str(tmp_path / "alt")]) == 0
    lines = capsys.readouterr().out.splitlines()
    e9 = next(l for l in lines if l.lstrip().startswith("E9"))
    assert "[cached" in e9


def test_runs_cheap_experiment(capsys):
    assert main(["E9"]) == 0
    out = capsys.readouterr().out
    assert "[E9]" in out
    assert "slot_us" in out


def test_case_insensitive(capsys):
    assert main(["e9"]) == 0
    assert "[E9]" in capsys.readouterr().out


def test_unknown_experiment(capsys):
    assert main(["E99"]) == 2
    assert "unknown" in capsys.readouterr().err


def test_no_args_is_usage_error(capsys):
    assert main([]) == 2


def test_negative_jobs_rejected(capsys):
    assert main(["E9", "--jobs", "-2"]) == 2


def test_cache_dir_colliding_with_file_rejected(tmp_path, capsys):
    blocker = tmp_path / "notadir"
    blocker.write_text("")
    assert main(["E9", "--cache-dir", str(blocker)]) == 2
    assert "cannot use --cache-dir" in capsys.readouterr().err


def test_report_written(tmp_path, capsys):
    path = tmp_path / "report.md"
    assert main(["E9", "--report", str(path)]) == 0
    text = path.read_text()
    assert text.startswith("# Experiment report")
    assert "## E9" in text
    assert "slot_us" in text


def test_repeated_ids_run_once(capsys):
    """`python -m repro E9 E9` must not run the experiment twice."""
    assert main(["E9", "e9", "E9"]) == 0
    out = capsys.readouterr().out
    assert out.count("[E9]") == 1


def test_jobs_flag_matches_serial_output(capsys):
    assert main(["E9", "--no-cache"]) == 0
    serial = capsys.readouterr().out
    assert main(["E9", "--no-cache", "--jobs", "2"]) == 0
    parallel = capsys.readouterr().out
    strip = lambda text: [line for line in text.splitlines()
                          if not line.startswith("(")]
    assert strip(serial) == strip(parallel)


def test_second_run_hits_cache(capsys):
    assert main(["E9"]) == 0
    capsys.readouterr()
    assert main(["E9"]) == 0
    assert "cached" in capsys.readouterr().out


def test_no_cache_flag_skips_cache(capsys):
    assert main(["E9"]) == 0
    capsys.readouterr()
    assert main(["E9", "--no-cache"]) == 0
    assert "cached" not in capsys.readouterr().out


def test_failing_experiment_exits_nonzero_with_summary(
        tmp_path, capsys, monkeypatch):
    def explode(**kwargs):
        raise RuntimeError("synthetic failure")

    monkeypatch.setitem(ALL_EXPERIMENTS, "E9", explode)
    report = tmp_path / "report.md"
    assert main(["E9", "E3", "--no-cache", "--report", str(report)]) == 1
    captured = capsys.readouterr()
    assert "1 experiment(s) failed" in captured.err
    assert "synthetic failure" in captured.err
    # The healthy experiment still ran and printed its table...
    assert "[E3]" in captured.out
    # ...and its section survived into the report alongside the failure.
    text = report.read_text()
    assert "## E3" in text
    assert "frame_ms" in text
    assert "## E9" in text
    assert "FAILED" in text


def test_ledger_summary_flag(capsys):
    assert main(["E9"]) == 0
    capsys.readouterr()
    assert main(["--ledger-summary"]) == 0
    out = capsys.readouterr().out
    assert "tasks:" in out
    assert "slowest" in out


def test_ledger_records_every_shard(tmp_path, capsys):
    assert main(["E9", "--cache-dir", str(tmp_path / "cache")]) == 0
    ledger = tmp_path / "cache" / "ledger.jsonl"
    records = [json.loads(line) for line in
               ledger.read_text().splitlines()]
    entries = [r for r in records if "event" not in r]
    starts = [r for r in records if r.get("event") == "start"]
    assert len(entries) == 6
    assert len(starts) == 6  # one dispatch event per shard
    assert {e["outcome"] for e in entries} == {"ok"}
    assert all(e["target"] == "E9" and e["wall_s"] >= 0 for e in entries)


def test_resume_skips_completed_work(capsys):
    assert main(["E9"]) == 0
    capsys.readouterr()
    # Cache intact: --resume serves the cached table like a normal run.
    assert main(["E9", "--resume"]) == 0
    assert "cached" in capsys.readouterr().out


def test_sqlite_ledger_backend(capsys):
    assert main(["E9", "--ledger-backend", "sqlite"]) == 0
    capsys.readouterr()
    import pathlib
    assert (pathlib.Path(".repro_cache") / "ledger.sqlite").exists()
    assert not (pathlib.Path(".repro_cache") / "ledger.jsonl").exists()
    assert main(["--ledger-summary", "--ledger-backend", "sqlite"]) == 0
    out = capsys.readouterr().out
    assert "ok=6" in out  # E9 shards into six tasks


def test_ledger_query_flag(capsys):
    assert main(["E9"]) == 0
    capsys.readouterr()
    assert main(["--ledger-query", "outcome=ok,limit=1"]) == 0
    lines = [l for l in capsys.readouterr().out.splitlines() if l]
    assert len(lines) == 1
    record = json.loads(lines[0])
    assert record["outcome"] == "ok"
    assert record["target"] == "E9"


def test_ledger_query_rejects_nonsense(capsys):
    assert main(["--ledger-query", "no-equals-sign"]) == 2
    assert "error" in capsys.readouterr().err


def test_chaos_flag_produces_identical_tables(capsys):
    assert main(["E9", "--no-cache"]) == 0
    clean = capsys.readouterr().out
    assert main(["E9", "--no-cache", "--chaos", "0.8",
                 "--chaos-seed", "3"]) == 0
    chaotic = capsys.readouterr().out
    assert clean == chaotic


def test_chaos_rejects_bad_intensity(capsys):
    assert main(["E9", "--chaos", "1.5"]) == 2
    assert "error" in capsys.readouterr().err
