"""802.11 MAC parameter sets."""

import pytest

from repro.dot11.params import (
    ACK_BITS,
    DATA_HEADER_BITS,
    DOT11B_PARAMS,
    DOT11G_PARAMS,
    Dot11Params,
)
from repro.errors import ConfigurationError
from repro.phy.radio import DOT11B_11M
from repro.units import US


def test_difs_is_sifs_plus_two_slots():
    assert DOT11B_PARAMS.difs_s == pytest.approx(10e-6 + 2 * 20e-6)
    assert DOT11G_PARAMS.difs_s == pytest.approx(10e-6 + 2 * 9e-6)


def test_ack_timeout_covers_sifs_plus_ack():
    timeout = DOT11B_PARAMS.ack_timeout_s()
    ack_air = DOT11B_PARAMS.phy.airtime(ACK_BITS, basic_rate=True)
    assert timeout > DOT11B_PARAMS.sifs_s + ack_air


def test_standard_cw_values():
    assert DOT11B_PARAMS.cw_min == 31
    assert DOT11B_PARAMS.cw_max == 1023
    assert DOT11G_PARAMS.cw_min == 15


def test_header_sizes():
    assert DATA_HEADER_BITS == 34 * 8
    assert ACK_BITS == 14 * 8


def test_invalid_params():
    with pytest.raises(ConfigurationError):
        Dot11Params(DOT11B_11M, slot_time_s=0, sifs_s=10 * US, cw_min=31,
                    cw_max=1023, retry_limit=7)
    with pytest.raises(ConfigurationError):
        Dot11Params(DOT11B_11M, slot_time_s=20 * US, sifs_s=10 * US,
                    cw_min=0, cw_max=1023, retry_limit=7)
    with pytest.raises(ConfigurationError):
        Dot11Params(DOT11B_11M, slot_time_s=20 * US, sifs_s=10 * US,
                    cw_min=63, cw_max=31, retry_limit=7)
    with pytest.raises(ConfigurationError):
        Dot11Params(DOT11B_11M, slot_time_s=20 * US, sifs_s=10 * US,
                    cw_min=31, cw_max=1023, retry_limit=-1)
