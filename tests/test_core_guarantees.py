"""The guarantee checker -- and its validation against packet simulation."""

import pytest

from repro.core.guarantees import check_guarantees
from repro.core.schedule import Schedule, SlotBlock
from repro.errors import ConfigurationError
from repro.mesh16.frame import default_frame_config
from repro.net.flows import Flow
from repro.net.topology import chain_topology


def routed_flow(rate_bps=24_000, budget=0.1):
    return Flow("f", 0, 2, rate_bps=rate_bps,
                delay_budget_s=budget).with_route([(0, 1), (1, 2)])


def schedule_for_route(frame, slots_per_link=1):
    return Schedule(frame.data_slots, {
        (0, 1): SlotBlock(0, slots_per_link),
        (1, 2): SlotBlock(slots_per_link, slots_per_link)})


class TestThroughputCondition:
    def test_stable_when_reserved_capacity_suffices(self):
        frame = default_frame_config()
        report = check_guarantees(schedule_for_route(frame), routed_flow(),
                                  frame, packet_bits=480)
        assert report.stable
        assert report.tightest_margin_bits > 0
        assert report.delay_bound_s is not None

    def test_unstable_when_rate_exceeds_reservation(self):
        frame = default_frame_config()
        # one slot/frame moves 5 packets of 480 bits = 2400 bits/frame;
        # offer 400 kb/s = 4000 bits/frame
        report = check_guarantees(schedule_for_route(frame),
                                  routed_flow(rate_bps=400_000), frame,
                                  packet_bits=480)
        assert not report.stable
        assert report.delay_bound_s is None
        assert report.tightest_margin_bits < 0

    def test_unscheduled_route_link_is_unstable(self):
        frame = default_frame_config()
        schedule = Schedule(frame.data_slots,
                            {(0, 1): SlotBlock(0, 1)})  # (1,2) missing
        report = check_guarantees(schedule, routed_flow(), frame,
                                  packet_bits=480)
        assert not report.stable

    def test_oversized_packet_rejected(self):
        frame = default_frame_config()
        with pytest.raises(ConfigurationError, match="exceeds"):
            check_guarantees(schedule_for_route(frame), routed_flow(),
                             frame, packet_bits=10 ** 6)

    def test_unrouted_flow_rejected(self):
        frame = default_frame_config()
        with pytest.raises(ConfigurationError):
            check_guarantees(schedule_for_route(frame),
                             Flow("f", 0, 2, rate_bps=1000), frame, 480)


class TestDelayBound:
    def test_bound_structure_one_packet_per_frame(self):
        frame = default_frame_config()
        schedule = schedule_for_route(frame)
        report = check_guarantees(schedule, routed_flow(), frame,
                                  packet_bits=480)
        slot_s = frame.frame_duration_s / frame.data_slots
        from repro.core.delay import path_delay_slots
        relay = path_delay_slots(schedule, routed_flow().route) * slot_s
        assert report.delay_bound_s == pytest.approx(
            frame.frame_duration_s + relay)

    def test_meets_budget(self):
        frame = default_frame_config()
        report = check_guarantees(schedule_for_route(frame), routed_flow(),
                                  frame, packet_bits=480)
        assert report.meets_budget(0.1)
        assert not report.meets_budget(0.001)


@pytest.mark.slow
class TestValidationAgainstSimulation:
    """The bound must hold, packet by packet, in the full emulation."""

    @pytest.mark.parametrize("seed", [3, 17, 55])
    def test_measured_delay_never_exceeds_bound(self, seed):
        from repro.analysis.scenarios import (make_voip_flows,
                                              run_tdma_scenario,
                                              schedule_for_flows)
        from repro.net.topology import grid_topology
        from repro.sim.random import RngRegistry
        from repro.traffic.voip import G729

        topology = grid_topology(3, 3)
        frame = default_frame_config()
        rngs = RngRegistry(seed=seed)
        flows = make_voip_flows(topology, 4, rngs, codec=G729, gateway=0,
                                delay_budget_s=0.1)
        schedule = schedule_for_flows(topology, flows, frame)
        result = run_tdma_scenario(topology, flows, frame, schedule,
                                   duration_s=3.0, rngs=rngs.spawn("run"),
                                   codec=G729)
        for flow in flows:
            report = check_guarantees(schedule, flow, frame,
                                      packet_bits=G729.packet_bits)
            assert report.stable, flow.name
            qos = result.qos[flow.name]
            assert qos.loss_fraction == 0.0
            # small epsilon for sync-step timing noise
            assert qos.max_delay_s <= report.delay_bound_s + 2e-4, \
                (flow.name, qos.max_delay_s, report.delay_bound_s)
