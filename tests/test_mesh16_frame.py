"""802.16 mesh frame geometry."""

import pytest

from repro.errors import ConfigurationError
from repro.mesh16.frame import MeshFrameConfig, default_frame_config
from repro.phy.radio import DOT11B_11M
from repro.units import MS, US


def config(**overrides):
    defaults = dict(frame_duration_s=10 * MS, control_slots=4,
                    control_slot_s=400 * US, data_slots=16,
                    guard_s=60 * US, phy=DOT11B_11M)
    defaults.update(overrides)
    return MeshFrameConfig(**defaults)


class TestGeometry:
    def test_subframe_partition(self):
        cfg = config()
        assert cfg.control_subframe_s == pytest.approx(1.6e-3)
        assert cfg.data_subframe_s == pytest.approx(8.4e-3)
        assert cfg.data_slot_s == pytest.approx(8.4e-3 / 16)

    def test_offsets_within_frame(self):
        cfg = config()
        assert cfg.control_slot_offset(0) == 0.0
        assert cfg.control_slot_offset(3) == pytest.approx(1.2e-3)
        assert cfg.data_slot_offset(0) == pytest.approx(1.6e-3)
        last = cfg.data_slot_offset(15)
        assert last + cfg.data_slot_s == pytest.approx(10e-3)

    def test_offset_bounds_checked(self):
        cfg = config()
        with pytest.raises(ConfigurationError):
            cfg.control_slot_offset(4)
        with pytest.raises(ConfigurationError):
            cfg.data_slot_offset(16)
        with pytest.raises(ConfigurationError):
            cfg.data_slot_offset(-1)

    def test_frame_start_and_index_roundtrip(self):
        cfg = config()
        for index in (0, 1, 7, 100):
            start = cfg.frame_start_local(index)
            assert cfg.frame_index_at_local(start + 1e-9) == index
        with pytest.raises(ConfigurationError):
            cfg.frame_start_local(-1)

    def test_frame_index_never_negative(self):
        assert config().frame_index_at_local(-5.0) == 0


class TestCapacity:
    def test_capacity_accounts_for_all_overheads(self):
        cfg = config()
        on_air = cfg.data_slot_s - cfg.guard_s
        mac_bits = cfg.phy.bits_in(on_air)
        assert cfg.data_slot_capacity_bits == mac_bits - 34 * 8 - 64

    def test_capacity_fits_voip_packet(self):
        # the default profile must carry at least one G.711 packet (1600
        # bits on wire) per slot
        assert default_frame_config().data_slot_capacity_bits >= 1600

    def test_larger_guard_smaller_capacity(self):
        big = config(guard_s=200 * US)
        small = config(guard_s=20 * US)
        assert big.data_slot_capacity_bits < small.data_slot_capacity_bits

    def test_slot_efficiency_below_one(self):
        cfg = config()
        assert 0 < cfg.slot_efficiency < 1


class TestValidation:
    def test_control_subframe_must_leave_room(self):
        with pytest.raises(ConfigurationError):
            config(control_slots=25, control_slot_s=400 * US)

    def test_guard_must_fit_in_slot(self):
        with pytest.raises(ConfigurationError):
            config(guard_s=1 * MS)

    def test_slot_must_fit_headers(self):
        with pytest.raises(ConfigurationError, match="too short"):
            config(data_slots=40)  # 210 us slots < 192 us preamble + hdrs

    def test_nonpositive_durations(self):
        with pytest.raises(ConfigurationError):
            config(frame_duration_s=0.0)
        with pytest.raises(ConfigurationError):
            config(data_slots=0)


def test_default_profile_sane():
    cfg = default_frame_config()
    assert cfg.frame_duration_s == pytest.approx(10e-3)
    assert cfg.data_slots == 16
    assert cfg.control_slots == 4
    assert cfg.data_slot_capacity_bits > 0
