"""Coordinated distributed scheduling (DSCH handshake)."""

import numpy as np
import pytest

from repro.core.conflict import conflict_graph
from repro.core.minslots import minimum_slots
from repro.errors import ConfigurationError
from repro.mesh16.distributed import DistributedScheduler
from repro.phy.interference import interference_graph
from repro.net.topology import (
    chain_topology,
    grid_topology,
    random_disk_topology,
    star_topology,
)


def run(topology, demands, frame_slots=16, **kwargs):
    scheduler = DistributedScheduler(topology, frame_slots, **kwargs)
    return scheduler.run(demands)


class TestBasics:
    def test_single_link(self, chain5):
        outcome = run(chain5, {(0, 1): 2})
        assert outcome.fully_served
        assert outcome.schedule.block((0, 1)).length == 2

    def test_all_demands_served_when_room(self, chain5):
        demands = {(0, 1): 1, (1, 2): 1, (2, 3): 1, (3, 4): 1}
        outcome = run(chain5, demands)
        assert outcome.fully_served
        assert outcome.schedule.demands_met(demands)

    def test_messages_three_per_negotiation(self, chain5):
        demands = {(0, 1): 1, (2, 3): 1}
        outcome = run(chain5, demands)
        assert outcome.messages == 3 * len(demands)

    def test_empty_demands(self, chain5):
        outcome = run(chain5, {})
        assert outcome.fully_served
        assert len(outcome.schedule) == 0

    def test_invalid_inputs(self, chain5):
        with pytest.raises(ConfigurationError):
            run(chain5, {(0, 4): 1})
        with pytest.raises(ConfigurationError):
            run(chain5, {(0, 1): -1})
        with pytest.raises(ConfigurationError):
            DistributedScheduler(chain5, 0)


class TestSafety:
    """The overhearing rules must reproduce the interference model."""

    @pytest.mark.parametrize("factory", [
        lambda: chain_topology(8),
        lambda: grid_topology(3, 3),
        lambda: star_topology(5),
        lambda: random_disk_topology(12, 350.0, 800.0,
                                     np.random.default_rng(8)),
    ])
    def test_committed_schedule_never_interferes(self, factory):
        topology = factory()
        demands = {link: 1 for link in topology.links}
        outcome = run(topology, demands, frame_slots=64, max_cycles=32)
        # whatever got committed must be collision-free physics-wise
        outcome.schedule.validate(interference_graph(topology))

    def test_conflicting_links_get_disjoint_slots(self, chain5):
        demands = {(0, 1): 2, (1, 2): 2, (2, 1): 2}
        outcome = run(chain5, demands)
        assert outcome.fully_served
        blocks = [outcome.schedule.block(l) for l in demands]
        for i, a in enumerate(blocks):
            for b in blocks[i + 1:]:
                assert not a.overlaps(b)

    def test_spatial_reuse_still_happens(self, chain8):
        demands = {(0, 1): 1, (5, 6): 1}
        outcome = run(chain8, demands)
        assert outcome.fully_served
        # far-apart links negotiate the same early slots independently
        assert outcome.schedule.block((0, 1)).start == 0
        assert outcome.schedule.block((5, 6)).start == 0


class TestElasticity:
    def test_unserved_demand_reported(self):
        topo = star_topology(3)
        # 3 links x 6 slots each = 18 > 16-slot frame, all conflicting
        demands = {(0, 1): 6, (0, 2): 6, (0, 3): 6}
        outcome = run(topo, demands)
        assert not outcome.fully_served
        served = [l for l in demands if l not in outcome.unserved]
        assert len(served) == 2
        assert sum(outcome.schedule.block(l).length for l in served) == 12

    def test_deadlock_terminates(self):
        topo = star_topology(2)
        demands = {(0, 1): 20, (0, 2): 20}  # each alone exceeds the frame
        outcome = run(topo, demands, frame_slots=16)
        assert outcome.unserved
        assert outcome.opportunities_used > 0


class TestVsCentralized:
    def test_centralized_never_worse_on_makespan(self):
        """The ILP's makespan lower-bounds the distributed outcome."""
        for factory, frame in ((lambda: chain_topology(6), 16),
                               (lambda: grid_topology(2, 3), 24)):
            topology = factory()
            demands = {link: 1 for link in topology.links}
            outcome = run(topology, demands, frame_slots=frame,
                          max_cycles=32)
            assert outcome.fully_served
            conflicts = conflict_graph(topology, hops=2)
            # binary search with a tight probe budget: all-links instances
            # have a heavy branch-and-bound tail near the optimum, and
            # this test only needs sanity bounds, not the exact minimum
            central = minimum_slots(conflicts, demands, frame,
                                    search="binary",
                                    time_limit_per_probe=5.0)
            assert central.feasible
            # the distributed protocol works against exact interference
            # (less conservative than the 2-hop model), so its makespan can
            # only beat the ILP's through that relaxation -- sanity-bound
            # it from below by the exact-interference clique at any node
            assert outcome.schedule.makespan() >= 2
            assert central.slots <= frame

    def test_deterministic(self, grid33):
        demands = {link: 1 for link in grid33.links[:10]}
        a = run(grid33, demands, frame_slots=32, max_cycles=16)
        b = run(grid33, demands, frame_slots=32, max_cycles=16)
        assert dict(a.schedule.items()) == dict(b.schedule.items())
        assert a.messages == b.messages


class TestLossyControlPlane:
    """Request/grant/confirm under Bernoulli message loss."""

    def test_zero_loss_path_byte_identical(self, chain5):
        demands = {(0, 1): 1, (1, 2): 1, (2, 3): 1}
        reliable = run(chain5, demands)
        lossless = run(chain5, demands, loss_rate=0.0, seed=11)
        assert dict(reliable.schedule.items()) == \
            dict(lossless.schedule.items())
        assert reliable.messages == lossless.messages
        assert lossless.retries == 0
        assert lossless.lost_messages == 0

    def test_invalid_lossy_inputs(self, chain5):
        with pytest.raises(ConfigurationError):
            DistributedScheduler(chain5, 16, loss_rate=1.5)
        with pytest.raises(ConfigurationError):
            DistributedScheduler(chain5, 16, loss_rate=0.5)  # no rng/seed
        with pytest.raises(ConfigurationError):
            DistributedScheduler(chain5, 16, loss_rate=0.5, seed=1,
                                 retry_limit=-1)
        with pytest.raises(ConfigurationError):
            DistributedScheduler(chain5, 16, loss_rate=0.5, seed=1,
                                 timeout_opportunities=0)

    @pytest.mark.parametrize("loss", [0.1, 0.3, 0.5])
    def test_lossy_runs_converge_and_stay_safe(self, loss):
        topology = grid_topology(3, 3)
        demands = {link: 1 for link in topology.links[:10]}
        outcome = run(topology, demands, frame_slots=32, max_cycles=64,
                      loss_rate=loss, seed=5, retry_limit=30)
        assert outcome.fully_served
        assert outcome.lost_messages > 0
        outcome.schedule.validate(interference_graph(topology))

    def test_lossy_deterministic_for_same_seed(self, grid33):
        demands = {link: 1 for link in grid33.links[:10]}
        a = run(grid33, demands, frame_slots=32, max_cycles=64,
                loss_rate=0.3, seed=9)
        b = run(grid33, demands, frame_slots=32, max_cycles=64,
                loss_rate=0.3, seed=9)
        assert dict(a.schedule.items()) == dict(b.schedule.items())
        assert (a.messages, a.retries, a.lost_messages) == \
            (b.messages, b.retries, b.lost_messages)

    def test_retries_recover_lost_messages(self):
        topology = chain_topology(5)
        demands = {(0, 1): 1, (1, 2): 1, (2, 3): 1, (3, 4): 1}
        outcome = run(topology, demands, max_cycles=64,
                      loss_rate=0.5, seed=3)
        assert outcome.fully_served
        assert outcome.retries > 0
        assert outcome.messages > 3 * len(demands)

    def test_grants_are_idempotent_no_backtracking(self):
        """A re-granted negotiation keeps the originally granted block.

        The grant commits both agents' slot state atomically at grant
        time, so a lost grant or confirm can only be *repeated*, never
        renegotiated onto different slots.
        """
        topology = chain_topology(5)
        demands = {(0, 1): 2, (1, 2): 2, (2, 3): 2}
        lossless = run(topology, demands, max_cycles=64)
        for seed in range(6):
            lossy = run(topology, demands, max_cycles=64,
                        loss_rate=0.4, seed=seed)
            assert lossy.fully_served
            # loss reorders negotiations, but granted blocks stay valid
            lossy.schedule.validate(interference_graph(topology))
            assert lossy.schedule.demands_met(demands)
        assert lossless.fully_served

    def test_abandonment_bounded_by_retry_limit(self):
        topology = chain_topology(3)
        demands = {(0, 1): 1, (1, 2): 1}
        # near-certain loss: every request times out, retries exhaust
        outcome = run(topology, demands, max_cycles=400,
                      loss_rate=0.98, seed=2, retry_limit=2,
                      timeout_opportunities=4)
        assert outcome.opportunities_used < 400 * 3  # terminated early
        # whatever was abandoned is reported as unserved, not dropped
        for link in demands:
            committed = dict(outcome.schedule.items())
            assert link in committed or link in outcome.unserved
