"""Drifting-clock model."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.clock import DriftingClock, PerfectClock
from repro.units import ppm


def test_perfect_clock_identity():
    clock = PerfectClock()
    for t in (0.0, 1.5, 100.0):
        assert clock.local_time(t) == pytest.approx(t)
        assert clock.true_time(t) == pytest.approx(t)
        assert clock.offset_at(t) == pytest.approx(0.0)


def test_fast_clock_gains_time():
    clock = DriftingClock(skew=ppm(10))
    assert clock.offset_at(1.0) == pytest.approx(10e-6)
    assert clock.offset_at(100.0) == pytest.approx(1e-3)


def test_slow_clock_loses_time():
    clock = DriftingClock(skew=-ppm(20))
    assert clock.offset_at(10.0) == pytest.approx(-200e-6)


def test_initial_offset():
    clock = DriftingClock(skew=0.0, offset=0.5)
    assert clock.local_time(0.0) == pytest.approx(0.5)
    assert clock.local_time(2.0) == pytest.approx(2.5)


def test_true_time_inverts_local_time():
    clock = DriftingClock(skew=ppm(50), offset=0.01)
    for t in (0.0, 3.7, 1000.0):
        assert clock.true_time(clock.local_time(t)) == pytest.approx(t)


def test_implausible_skew_rejected():
    with pytest.raises(ConfigurationError):
        DriftingClock(skew=10.0)  # forgot units.ppm()


def test_step_advances_phase():
    clock = DriftingClock(skew=0.0)
    clock.step(5.0, 0.002)
    assert clock.local_time(5.0) == pytest.approx(5.002)
    assert clock.local_time(6.0) == pytest.approx(6.002)


def test_step_preserves_continuity_before_step():
    clock = DriftingClock(skew=ppm(100))
    before = clock.local_time(10.0)
    clock.step(10.0, -before + 10.0)  # zero the offset at t=10
    assert clock.local_time(10.0) == pytest.approx(10.0)
    # skew still applies after the step
    assert clock.offset_at(11.0) == pytest.approx(100e-6, rel=1e-3)


def test_set_local_pins_reading():
    clock = DriftingClock(skew=ppm(10), offset=0.1)
    clock.set_local(50.0, 50.0)
    assert clock.local_time(50.0) == pytest.approx(50.0)
    assert clock.offset_at(51.0) == pytest.approx(10e-6, rel=1e-3)


def test_discipline_rate_cancels_skew():
    skew = ppm(10)
    clock = DriftingClock(skew=skew)
    clock.set_local(0.0, 0.0)
    clock.discipline_rate(0.0, 1.0 / (1.0 + skew))
    assert clock.effective_rate == pytest.approx(1.0)
    assert clock.offset_at(1000.0) == pytest.approx(0.0, abs=1e-9)


def test_discipline_rate_must_be_positive():
    clock = DriftingClock()
    with pytest.raises(ConfigurationError):
        clock.discipline_rate(0.0, 0.0)
    with pytest.raises(ConfigurationError):
        clock.discipline_rate(0.0, -1.0)


def test_skew_property_reports_intrinsic_rate():
    clock = DriftingClock(skew=ppm(25))
    assert clock.skew == pytest.approx(ppm(25))
    clock.discipline_rate(0.0, 0.9999)
    # intrinsic skew unchanged by discipline
    assert clock.skew == pytest.approx(ppm(25))


def test_two_clocks_diverge_at_relative_rate():
    a = DriftingClock(skew=ppm(10))
    b = DriftingClock(skew=-ppm(10))
    t = 5.0
    mutual = abs(a.local_time(t) - b.local_time(t))
    assert mutual == pytest.approx(2 * ppm(10) * t)


def test_glitch_jumps_phase_and_counts():
    clock = DriftingClock(skew=ppm(10))
    before = clock.offset_at(5.0)
    clock.glitch(5.0, 2e-3)
    assert clock.offset_at(5.0) == pytest.approx(before + 2e-3)
    assert clock.glitches == 1
    clock.glitch(6.0, -1e-3)
    assert clock.glitches == 2


def test_glitch_preserves_past_continuity():
    clock = DriftingClock(skew=ppm(50))
    at_ten = clock.local_time(10.0)
    clock.glitch(10.0, 5e-3)
    # The glitch re-anchors at t=10: the jump applies from there on.
    assert clock.local_time(10.0) == pytest.approx(at_ten + 5e-3)
    assert clock.skew == pytest.approx(ppm(50))
