"""Multi-seed replication harness."""

import pytest

from repro.analysis.replication import replicate
from repro.errors import ConfigurationError, SimulationError

from tests.runtime_helpers import metrics_scenario


def test_summarizes_each_metric():
    def scenario(rngs):
        draw = rngs.stream("x").random()
        return {"loss": draw * 0.1, "delay": 5.0 + draw}

    summary = replicate(scenario, seeds=range(12))
    assert set(summary) == {"loss", "delay"}
    loss = summary["loss"]
    assert 0.0 <= loss.mean <= 0.1
    assert loss.ci_low <= loss.mean <= loss.ci_high
    assert len(loss.samples) == 12


def test_deterministic_metrics_collapse_ci():
    summary = replicate(lambda rngs: {"constant": 7.0}, seeds=range(5))
    metric = summary["constant"]
    assert metric.mean == 7.0
    assert metric.half_width == 0.0


def test_seeds_actually_vary_the_scenario():
    seen = []

    def scenario(rngs):
        value = float(rngs.stream("v").random())
        seen.append(value)
        return {"v": value}

    replicate(scenario, seeds=[1, 2, 3])
    assert len(set(seen)) == 3


def test_mismatched_metrics_rejected():
    calls = []

    def scenario(rngs):
        calls.append(None)
        return {"a": 1.0} if len(calls) == 1 else {"b": 1.0}

    with pytest.raises(ConfigurationError, match="differing"):
        replicate(scenario, seeds=[1, 2])


def test_empty_seeds_rejected():
    with pytest.raises(ConfigurationError):
        replicate(lambda rngs: {"x": 1.0}, seeds=[])


def test_str_rendering():
    summary = replicate(lambda rngs: {"m": 2.0}, seeds=[1, 2])
    assert "m:" in str(summary["m"])


def test_parallel_bitwise_identical_to_serial():
    """jobs=4 must reproduce jobs=1 exactly: derived seeds, no shared RNG."""
    serial = replicate(metrics_scenario, seeds=range(8), jobs=1)
    parallel = replicate(metrics_scenario, seeds=range(8), jobs=4)
    assert set(serial) == set(parallel) == {"value", "shifted"}
    for name in serial:
        assert serial[name].samples == parallel[name].samples  # bitwise
        assert serial[name].mean == parallel[name].mean
        assert serial[name].ci_low == parallel[name].ci_low
        assert serial[name].ci_high == parallel[name].ci_high


def test_string_target_works_serially_and_matches_parallel():
    serial = replicate("tests.runtime_helpers:metrics_scenario",
                       seeds=range(6), jobs=1)
    parallel = replicate("tests.runtime_helpers:metrics_scenario",
                         seeds=range(6), jobs=2)
    for name in serial:
        assert serial[name].samples == parallel[name].samples


def test_parallel_failure_surfaces_as_simulation_error():
    with pytest.raises(SimulationError, match="kaboom"):
        replicate("tests.runtime_helpers:boom_scenario", seeds=[1, 2],
                  jobs=2)


@pytest.mark.slow
def test_replicated_packet_scenario():
    """End to end: TDMA VoIP loss across seeds has a tight CI at zero."""
    from repro.analysis.scenarios import (make_voip_flows,
                                          run_tdma_scenario,
                                          schedule_for_flows)
    from repro.mesh16.frame import default_frame_config
    from repro.net.topology import chain_topology
    from repro.traffic.voip import G729

    topology = chain_topology(4)
    frame = default_frame_config()

    def scenario(rngs):
        flows = make_voip_flows(topology, 2, rngs, codec=G729, gateway=0,
                                delay_budget_s=0.1)
        schedule = schedule_for_flows(topology, flows, frame)
        run = run_tdma_scenario(topology, flows, frame, schedule, 1.0,
                                rngs.spawn("run"), codec=G729)
        worst = max(q.p95_delay_s for q in run.qos.values())
        return {"loss": run.total_loss_fraction(), "p95_s": worst}

    summary = replicate(scenario, seeds=range(4))
    assert summary["loss"].mean == 0.0
    assert summary["p95_s"].mean < 0.05
