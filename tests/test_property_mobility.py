"""Property-based tests: incremental ConflictIndex ≡ cold rebuild (S36).

The delta-update contract :func:`repro.core.engine.updated_conflict_edges`
promises: after *any* sequence of in-place edge changes, the
delta-updated conflict index is indistinguishable from one rebuilt from
scratch -- same vertices, same conflict edges, same CSR adjacency
arrays, same clique demand bound.  And at the system level: a repair
engine driven by a mobility stream through a delta-updating engine
keeps its schedule S8-valid, in lockstep with a rebuild-always engine.
"""

import networkx as nx
import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.engine import SolverEngine, topology_fingerprint
from repro.errors import ConfigurationError
from repro.mobility.models import RandomWaypointModel
from repro.mobility.run import run_mobility
from repro.mobility.stream import TopologyStream
from repro.net.flows import Flow
from repro.net.topology import grid_topology, random_disk_topology


def make_topology(kind, seed):
    if kind == "grid34":
        return grid_topology(3, 4)
    if kind == "grid44":
        return grid_topology(4, 4)
    return random_disk_topology(10, radio_range=160.0, area=320.0,
                                seed=seed)


@st.composite
def mutation_sequences(draw):
    """A base topology plus 1-4 connectivity-preserving edge changes."""
    kind = draw(st.sampled_from(["grid34", "grid44", "disk"]))
    seed = draw(st.integers(min_value=0, max_value=500))
    hops = draw(st.sampled_from([2, 3]))
    ops = draw(st.lists(st.tuples(st.booleans(),
                                  st.integers(min_value=0, max_value=63)),
                        min_size=1, max_size=4))
    return kind, seed, hops, ops


def apply_op(topology, removed, is_remove, index):
    """One connectivity-preserving mutation; returns False when skipped."""
    if is_remove:
        bridges = set(map(frozenset, nx.bridges(topology.graph)))
        candidates = sorted(e for e in
                            (tuple(sorted(e)) for e in topology.graph.edges)
                            if frozenset(e) not in bridges)
        if not candidates:
            return False
        edge = candidates[index % len(candidates)]
        topology.apply_edge_changes(remove=[edge])
        removed.append(edge)
    else:
        if not removed:
            return False
        edge = removed.pop(index % len(removed))
        topology.apply_edge_changes(add=[edge])
    return True


@given(mutation_sequences())
@settings(max_examples=15, deadline=None)
def test_delta_updated_index_equals_cold_rebuild(instance):
    kind, seed, hops, ops = instance
    topology = make_topology(kind, seed)
    engine = SolverEngine(delta_updates=True)
    engine.conflict_index(topology, hops=hops)
    removed = []
    fingerprint = topology_fingerprint(topology)
    for is_remove, index in ops:
        if not apply_op(topology, removed, is_remove, index):
            continue
        # the mutation must never serve a stale fingerprint: every edge
        # change moves the fingerprint off the pre-mutation value (a
        # remove/re-add cycle may legitimately revisit an older state)
        before, fingerprint = fingerprint, topology_fingerprint(topology)
        assert fingerprint != before
        delta_idx = engine.conflict_index(topology, hops=hops)
        cold = SolverEngine(delta_updates=False).conflict_index(
            topology, hops=hops)
        assert delta_idx.links == cold.links
        assert list(delta_idx.graph.nodes) == list(cold.graph.nodes)
        assert list(delta_idx.graph.edges) == list(cold.graph.edges)
        assert np.array_equal(delta_idx.indptr, cold.indptr)
        assert np.array_equal(delta_idx.indices, cold.indices)
        demands = {link: 1 + i % 3
                   for i, link in enumerate(delta_idx.links)}
        assert delta_idx.clique_demand_bound(demands) == \
            cold.clique_demand_bound(demands)
        assert delta_idx.key == cold.key


@st.composite
def mobility_runs(draw):
    """A small random-waypoint stream plus one gateway flow."""
    seed = draw(st.integers(min_value=0, max_value=300))
    num_nodes = draw(st.integers(min_value=5, max_value=8))
    speed = draw(st.sampled_from([0.0, 5.0, 15.0, 25.0]))
    return seed, num_nodes, speed


@given(mobility_runs())
@settings(max_examples=10, deadline=None)
def test_repair_under_stream_stays_valid_in_both_arms(instance):
    seed, num_nodes, speed = instance
    model = RandomWaypointModel(num_nodes, 300.0, speed, horizon_s=8.0,
                                seed=seed)
    stream = TopologyStream(model, 140.0, dt=2.0)
    try:
        world = stream.fault_plan(gateway=0)
    except ConfigurationError:
        assume(False)  # degenerate draw: gateway isolated or absent
    src = max((n for n in world.topology.graph.nodes if n != 0),
              key=lambda n: (world.topology.hop_distance(0, n), n))
    flows = [Flow("f0", src=src, dst=0, rate_bps=64_000,
                  delay_budget_s=0.5)]
    results = [run_mobility(stream, flows,
                            engine=SolverEngine(delta_updates=arm))
               for arm in (True, False)]
    delta, rebuild = results
    # S8 validity and delay guarantees hold at every churn batch
    assert delta.conflict_ok and delta.guarantee_ok
    # the incremental-index arm is step-for-step identical to rebuilds
    assert delta.steps == rebuild.steps
    assert delta.lost_packets == rebuild.lost_packets
    assert (delta.engine_stats["index_builds"]
            <= rebuild.engine_stats["index_builds"])
