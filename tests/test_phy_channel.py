"""Broadcast channel: delivery, collisions, carrier sense."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.phy.channel import BroadcastChannel, ChannelClient
from repro.phy.frames import FrameKind, PhyFrame
from repro.phy.radio import PhyParams
from repro.sim.engine import Simulator
from repro.sim.trace import Trace
from repro.units import US

#: convenient test PHY: 1 Mb/s, no preamble, 1 us propagation
TEST_PHY = PhyParams("test", data_rate_bps=1e6, basic_rate_bps=1e6,
                     plcp_overhead_s=0.0, propagation_delay_s=1 * US)


class Listener(ChannelClient):
    def __init__(self):
        self.received: list[tuple[PhyFrame, bool]] = []
        self.medium_changes = 0

    def on_receive(self, frame, success):
        self.received.append((frame, success))

    def on_medium_change(self):
        self.medium_changes += 1


def setup_channel(topology, trace=None):
    sim = Simulator()
    channel = BroadcastChannel(sim, topology, TEST_PHY, trace)
    listeners = {}
    for node in topology.nodes:
        listeners[node] = Listener()
        channel.attach(node, listeners[node])
    return sim, channel, listeners


def frame_from(src, bits=1000, dst=None):
    return PhyFrame(FrameKind.DATA, src, dst, bits)


class TestDelivery:
    def test_neighbors_receive(self, chain5):
        sim, channel, listeners = setup_channel(chain5)
        channel.transmit(1, frame_from(1))
        sim.run()
        assert len(listeners[0].received) == 1
        assert len(listeners[2].received) == 1
        assert listeners[0].received[0][1] is True

    def test_non_neighbors_hear_nothing(self, chain5):
        sim, channel, listeners = setup_channel(chain5)
        channel.transmit(0, frame_from(0))
        sim.run()
        assert listeners[2].received == []
        assert listeners[4].received == []

    def test_delivery_time_is_airtime_plus_propagation(self, chain5):
        sim, channel, listeners = setup_channel(chain5)
        channel.transmit(0, frame_from(0, bits=1000))
        sim.run()
        # 1000 bits at 1 Mb/s = 1 ms, plus 1 us propagation
        assert sim.now == pytest.approx(1e-3 + 1e-6)

    def test_explicit_duration_respected(self, chain5):
        sim, channel, ____ = setup_channel(chain5)
        returned = channel.transmit(0, frame_from(0), duration=5e-4)
        assert returned == pytest.approx(5e-4)

    def test_src_mismatch_rejected(self, chain5):
        ____, channel, ____ = setup_channel(chain5)
        with pytest.raises(SimulationError):
            channel.transmit(0, frame_from(1))

    def test_double_transmit_rejected(self, chain5):
        ____, channel, ____ = setup_channel(chain5)
        channel.transmit(0, frame_from(0))
        with pytest.raises(SimulationError, match="already transmitting"):
            channel.transmit(0, frame_from(0))

    def test_unknown_node_rejected(self, chain5):
        ____, channel, ____ = setup_channel(chain5)
        with pytest.raises(ConfigurationError):
            channel.transmit(99, frame_from(99))

    def test_double_attach_rejected(self, chain5):
        sim = Simulator()
        channel = BroadcastChannel(sim, chain5, TEST_PHY)
        channel.attach(0, Listener())
        with pytest.raises(ConfigurationError):
            channel.attach(0, Listener())


class TestCollisions:
    def test_hidden_terminal_collision(self, chain5):
        # 0 and 2 both transmit to 1 simultaneously: 1 hears garbage
        trace = Trace()
        sim, channel, listeners = setup_channel(chain5, trace)
        channel.transmit(0, frame_from(0))
        channel.transmit(2, frame_from(2))
        sim.run()
        results = [ok for ____, ok in listeners[1].received]
        assert results == [False, False]
        assert trace.count("phy.rx_collision") >= 2

    def test_partial_overlap_still_collides(self, chain5):
        sim, channel, listeners = setup_channel(chain5)
        channel.transmit(0, frame_from(0, bits=1000))  # 1 ms
        sim.run(until=0.5e-3)
        channel.transmit(2, frame_from(2, bits=1000))
        sim.run()
        assert all(not ok for ____, ok in listeners[1].received)

    def test_back_to_back_no_collision(self, chain5):
        sim, channel, listeners = setup_channel(chain5)
        channel.transmit(0, frame_from(0, bits=1000))
        sim.run(until=1.1e-3)  # first fully delivered
        channel.transmit(2, frame_from(2, bits=1000))
        sim.run()
        assert [ok for ____, ok in listeners[1].received] == [True, True]

    def test_non_interfering_parallel_transmissions(self, chain8):
        # 0->1 and 5->6 are far apart: both succeed simultaneously
        sim, channel, listeners = setup_channel(chain8)
        channel.transmit(0, frame_from(0))
        channel.transmit(5, frame_from(5))
        sim.run()
        assert listeners[1].received[0][1] is True
        assert listeners[6].received[0][1] is True

    def test_rx_during_tx_lost(self, chain5):
        # 1 starts transmitting while 0's frame is arriving: 1 loses it
        trace = Trace()
        sim, channel, listeners = setup_channel(chain5, trace)
        channel.transmit(0, frame_from(0, bits=1000))
        sim.run(until=0.2e-3)
        channel.transmit(1, frame_from(1, bits=100))
        sim.run()
        zero_to_one = [ok for f, ok in listeners[1].received if f.src == 0]
        assert zero_to_one == [False]
        # symmetric: node 0 also loses node 1's frame while transmitting
        assert trace.count("phy.rx_rx_during_tx") == 2

    def test_transmission_starting_mid_reception_also_corrupts(self, chain5):
        # receiver starts its own tx after the reception began
        sim, channel, listeners = setup_channel(chain5)
        channel.transmit(0, frame_from(0, bits=2000))  # 2 ms
        sim.run(until=1.5e-3)
        channel.transmit(1, frame_from(1, bits=100))
        sim.run()
        zero_to_one = [ok for f, ok in listeners[1].received if f.src == 0]
        assert zero_to_one == [False]


class TestCarrierSense:
    def test_transmitter_senses_own_tx(self, chain5):
        sim, channel, ____ = setup_channel(chain5)
        assert not channel.medium_busy(0)
        channel.transmit(0, frame_from(0, bits=1000))
        assert channel.transmitting(0)
        assert channel.medium_busy(0)
        sim.run()
        assert not channel.medium_busy(0)

    def test_neighbor_senses_after_propagation(self, chain5):
        sim, channel, ____ = setup_channel(chain5)
        channel.transmit(0, frame_from(0, bits=1000))
        assert not channel.medium_busy(1)  # propagation not elapsed
        sim.run(until=2e-6)
        assert channel.medium_busy(1)

    def test_two_hop_node_never_senses(self, chain5):
        sim, channel, ____ = setup_channel(chain5)
        channel.transmit(0, frame_from(0, bits=1000))
        sim.run(until=0.5e-3)
        assert not channel.medium_busy(2)

    def test_busy_until(self, chain5):
        sim, channel, ____ = setup_channel(chain5)
        channel.transmit(0, frame_from(0, bits=1000))
        assert channel.busy_until(0) == pytest.approx(1e-3)
        sim.run(until=2e-6)
        assert channel.busy_until(1) == pytest.approx(1e-3 + 1e-6)
        assert channel.busy_until(3) == pytest.approx(sim.now)

    def test_medium_change_notifications(self, chain5):
        sim, channel, listeners = setup_channel(chain5)
        channel.transmit(0, frame_from(0))
        sim.run()
        # neighbour 1: busy at arrival start + idle at arrival end (plus
        # the delivery notification)
        assert listeners[1].medium_changes >= 2
        # transmitter: start + end
        assert listeners[0].medium_changes >= 2


class TestFaultHooks:
    def test_down_node_radiates_nothing(self, chain5):
        sim, channel, listeners = setup_channel(chain5)
        channel.set_node_down(1)
        airtime = channel.transmit(1, frame_from(1))
        sim.run()
        assert airtime > 0  # slot accounting unchanged
        assert listeners[0].received == []
        assert listeners[2].received == []

    def test_down_node_hears_nothing(self, chain5):
        sim, channel, listeners = setup_channel(chain5)
        channel.set_node_down(2)
        channel.transmit(1, frame_from(1))
        sim.run()
        assert listeners[2].received == []
        assert len(listeners[0].received) == 1

    def test_crash_mid_flight_drops_frame(self, chain5):
        sim, channel, listeners = setup_channel(chain5)
        channel.transmit(0, frame_from(0, bits=1000))
        sim.schedule_at(0.5e-3, channel.set_node_down, 1)
        sim.run()
        assert listeners[1].received == []

    def test_node_recovery(self, chain5):
        sim, channel, listeners = setup_channel(chain5)
        channel.set_node_down(1)
        channel.set_node_down(1, down=False)
        assert not channel.node_is_down(1)
        channel.transmit(0, frame_from(0))
        sim.run()
        assert len(listeners[1].received) == 1

    def test_link_down_blocks_both_directions(self, chain5):
        sim, channel, listeners = setup_channel(chain5)
        channel.set_link_down((1, 2))
        channel.transmit(1, frame_from(1))
        sim.run()
        assert listeners[2].received == []
        assert len(listeners[0].received) == 1  # other neighbour unaffected
        channel.transmit(2, frame_from(2))
        sim.run()
        assert len(listeners[1].received) == 0
        assert len(listeners[3].received) == 1

    def test_link_restore(self, chain5):
        sim, channel, listeners = setup_channel(chain5)
        channel.set_link_down((1, 2))
        channel.set_link_down((2, 1), down=False)  # undirected alias
        assert not channel.link_is_down((1, 2))
        channel.transmit(1, frame_from(1))
        sim.run()
        assert len(listeners[2].received) == 1

    def test_unknown_ids_rejected(self, chain5):
        ____, channel, ____ = setup_channel(chain5)
        with pytest.raises(ConfigurationError):
            channel.set_node_down(99)
        with pytest.raises(ConfigurationError):
            channel.set_link_down((0, 4))  # not adjacent in a chain

    def test_update_link_error_rates(self, chain5):
        import numpy as np
        sim, channel, listeners = setup_channel(chain5)
        channel.set_error_model(np.random.default_rng(0))
        channel.update_link_error_rates({(0, 1): 1.0 - 1e-12})
        channel.transmit(0, frame_from(0))
        sim.run()
        assert listeners[1].received[0][1] is False  # corrupted
        channel.update_link_error_rates({(0, 1): 0.0})
        channel.transmit(0, frame_from(0))
        sim.run()
        assert listeners[1].received[1][1] is True

    def test_update_rates_requires_error_model(self, chain5):
        ____, channel, ____ = setup_channel(chain5)
        with pytest.raises(ConfigurationError, match="set_error_model"):
            channel.update_link_error_rates({(0, 1): 0.5})

    def test_update_rates_validates(self, chain5):
        import numpy as np
        ____, channel, ____ = setup_channel(chain5)
        channel.set_error_model(np.random.default_rng(0))
        with pytest.raises(ConfigurationError):
            channel.update_link_error_rates({(0, 1): 1.5})
