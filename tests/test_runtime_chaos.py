"""Runtime fault injection: the chaos policy and the hardening it tests.

The contract under test throughout: chaos that stops injecting within
the retry budget must leave results bitwise identical to a clean run,
while chaos that exhausts the budget fails loudly with a precise ledger
trail -- never a silently wrong or missing row.
"""

import json

import pytest

from repro import obs
from repro.errors import ConfigurationError
from repro.runtime.cache import ResultCache
from repro.runtime.chaos import (
    ChaosPolicy,
    chaos_probe,
    deterministic_unit,
    tear_file,
)
from repro.runtime.ledger import RunLedger
from repro.runtime.pool import run_tasks
from repro.runtime.tasks import make_task

PROBE = "repro.runtime.chaos:chaos_probe"


def probe_tasks(n=6, seed=7):
    return [make_task(PROBE, {"x": x, "seed": seed}) for x in range(n)]


class FakeTime:
    """Monotonic clock + sleep pair that never really waits."""

    def __init__(self):
        self.now = 0.0
        self.slept = []

    def clock(self):
        return self.now

    def sleep(self, seconds):
        self.slept.append(seconds)
        self.now += seconds


# ---------------------------------------------------------------------------
# deterministic_unit / policy mechanics
# ---------------------------------------------------------------------------

def test_deterministic_unit_is_stable_and_uniformish():
    values = [deterministic_unit("site", k, 1) for k in range(200)]
    assert values == [deterministic_unit("site", k, 1) for k in range(200)]
    assert all(0.0 <= v < 1.0 for v in values)
    assert 0.3 < sum(values) / len(values) < 0.7


def test_policy_validation():
    with pytest.raises(ConfigurationError):
        ChaosPolicy(crash_rate=1.2)
    with pytest.raises(ConfigurationError):
        ChaosPolicy(crash_rate=0.6, hang_rate=0.3, transient_rate=0.3)
    with pytest.raises(ConfigurationError):
        ChaosPolicy(torn_cache_rate=0.7, enospc_rate=0.7)
    with pytest.raises(ConfigurationError):
        ChaosPolicy(hang_s=0.0)
    with pytest.raises(ConfigurationError):
        ChaosPolicy(max_attempt=0)
    with pytest.raises(ConfigurationError):
        ChaosPolicy.at_intensity(1.5)


def test_task_action_partitions_one_draw_and_respects_max_attempt():
    policy = ChaosPolicy(seed=3, crash_rate=0.3, hang_rate=0.3,
                         transient_rate=0.4, max_attempt=2)
    actions = {policy.task_action(f"k{i}", 1) for i in range(50)}
    assert actions == {"crash", "hang", "transient"}  # rates sum to 1
    assert all(policy.task_action(f"k{i}", 3) is None for i in range(50))
    # Decisions are pure functions of (seed, key, attempt).
    assert [policy.task_action(f"k{i}", 1) for i in range(50)] == \
        [policy.task_action(f"k{i}", 1) for i in range(50)]


def test_tear_file_damages_but_keeps_a_prefix(tmp_path):
    path = tmp_path / "entry.json"
    path.write_text(json.dumps({"value": list(range(100))}))
    size = path.stat().st_size
    assert tear_file(path) is True
    torn = path.stat().st_size
    assert 0 < torn < size
    with pytest.raises(json.JSONDecodeError):
        json.loads(path.read_text())
    assert tear_file(tmp_path / "missing.json") is False


def test_chaos_probe_is_deterministic():
    assert chaos_probe(3, seed=9) == chaos_probe(3, seed=9)
    assert chaos_probe(3, seed=9) != chaos_probe(4, seed=9)


# ---------------------------------------------------------------------------
# serial chaos: convergence and loud failure
# ---------------------------------------------------------------------------

def test_serial_chaos_within_budget_is_bitwise_identical(tmp_path):
    tasks = probe_tasks()
    baseline = run_tasks(tasks, jobs=1)
    chaos = ChaosPolicy.at_intensity(1.0, seed=5, max_attempt=2)
    fake = FakeTime()
    cache = ResultCache(tmp_path / "cache")
    ledger = RunLedger(tmp_path / "ledger.jsonl")
    out = run_tasks(tasks, jobs=1, retries=3, backoff_s=0.2, jitter=0.5,
                    retry_timeouts=True, chaos=chaos, cache=cache,
                    ledger=ledger, clock=fake.clock, sleep=fake.sleep)
    assert [r.outcome for r in out] == ["ok"] * len(tasks)
    assert [r.value for r in out] == [r.value for r in baseline]
    assert any(r.attempts > 1 for r in out)
    assert fake.slept, "backoff must go through the injected sleep"
    assert len(ledger.entries()) == len(tasks)


def test_fatal_chaos_fails_loudly_with_ledger_trail(tmp_path):
    tasks = probe_tasks(4)
    chaos = ChaosPolicy(seed=1, crash_rate=1.0, max_attempt=3)
    ledger = RunLedger(tmp_path / "ledger.jsonl")
    fake = FakeTime()
    out = run_tasks(tasks, jobs=1, retries=1, chaos=chaos, ledger=ledger,
                    clock=fake.clock, sleep=fake.sleep)
    assert [r.outcome for r in out] == ["failed"] * 4
    assert all(r.attempts == 2 for r in out)
    assert all("chaos" in r.error for r in out)
    entries = ledger.entries()
    assert len(entries) == 4
    assert all(e["outcome"] == "failed" and "chaos" in e["error"]
               for e in entries)
    # Every attempt left a start event: 2 per task.
    starts = [e for e in ledger.events() if e.get("event") == "start"]
    assert len(starts) == 8


def test_serial_hang_becomes_timeout_without_sleeping():
    tasks = probe_tasks(3)
    chaos = ChaosPolicy(seed=2, hang_rate=1.0, hang_s=60.0, max_attempt=9)
    fake = FakeTime()
    out = run_tasks(tasks, jobs=1, retries=2, chaos=chaos,
                    clock=fake.clock, sleep=fake.sleep)
    assert [r.outcome for r in out] == ["timeout"] * 3
    assert all(r.attempts == 1 for r in out)  # not retried by default


def test_serial_hang_retried_under_retry_timeouts():
    tasks = probe_tasks(3)
    chaos = ChaosPolicy(seed=2, hang_rate=1.0, hang_s=60.0, max_attempt=1)
    fake = FakeTime()
    with obs.use_registry(obs.MetricsRegistry()) as registry:
        out = run_tasks(tasks, jobs=1, retries=1, retry_timeouts=True,
                        chaos=chaos, clock=fake.clock, sleep=fake.sleep)
    assert [r.outcome for r in out] == ["ok"] * 3
    assert all(r.attempts == 2 for r in out)
    counters = registry.snapshot()["counters"]
    assert counters["runtime.pool.timeout_retries"] == 3
    assert counters["runtime.chaos.hangs"] == 3


# ---------------------------------------------------------------------------
# cache-write chaos
# ---------------------------------------------------------------------------

def test_torn_cache_writes_quarantine_and_recompute(tmp_path):
    tasks = probe_tasks(4)
    chaos = ChaosPolicy(seed=4, torn_cache_rate=1.0)
    cache = ResultCache(tmp_path / "cache")
    with obs.use_registry(obs.MetricsRegistry()) as registry:
        out = run_tasks(tasks, jobs=1, chaos=chaos, cache=cache)
        assert all(r.outcome == "ok" for r in out)
        counters = registry.snapshot()["counters"]
        assert counters["runtime.chaos.torn_cache_writes"] == 4
        # Damaged entries are quarantined on read; values recompute.
        assert all(cache.get(task) is None for task in tasks)
    assert sum(1 for p in cache.quarantine_dir.iterdir()
               if p.is_file()) == 4
    warm = run_tasks(tasks, jobs=1, cache=ResultCache(tmp_path / "cache"))
    assert [r.value for r in warm] == [r.value for r in out]


def test_enospc_chaos_skips_cache_but_not_results(tmp_path):
    tasks = probe_tasks(3)
    chaos = ChaosPolicy(seed=4, enospc_rate=1.0)
    cache = ResultCache(tmp_path / "cache")
    with obs.use_registry(obs.MetricsRegistry()) as registry:
        out = run_tasks(tasks, jobs=1, chaos=chaos, cache=cache)
        counters = registry.snapshot()["counters"]
    assert all(r.outcome == "ok" for r in out)
    assert counters["runtime.chaos.enospc"] == 3
    assert counters["runtime.cache.write_errors"] == 3
    assert all(cache.get(task) is None for task in tasks)


def test_torn_ledger_writes_recover_on_jsonl(tmp_path):
    tasks = probe_tasks(3)
    chaos = ChaosPolicy(seed=6, torn_ledger_rate=1.0)
    ledger = RunLedger(tmp_path / "ledger.jsonl")
    out = run_tasks(tasks, jobs=1, chaos=chaos, ledger=ledger)
    assert all(r.outcome == "ok" for r in out)
    entries = ledger.entries()
    assert len(entries) == 3  # every record survived its torn prefix
    assert ledger.corrupt_lines == 3  # and every torn prefix is counted


# ---------------------------------------------------------------------------
# parallel chaos: real crashes, pool rebuilds
# ---------------------------------------------------------------------------

def test_parallel_crashes_rebuild_pool_and_converge(tmp_path):
    tasks = probe_tasks(4)
    baseline = run_tasks(tasks, jobs=1)
    chaos = ChaosPolicy(seed=8, crash_rate=1.0, max_attempt=1)
    with obs.use_registry(obs.MetricsRegistry()) as registry:
        out = run_tasks(tasks, jobs=2, retries=1, backoff_s=0.01,
                        chaos=chaos)
        counters = registry.snapshot()["counters"]
    assert [r.outcome for r in out] == ["ok"] * 4
    assert all(r.attempts == 2 for r in out)
    assert [r.value for r in out] == [r.value for r in baseline]
    assert counters["runtime.pool.pool_restarts"] >= 1
    assert counters["runtime.chaos.crashes"] == 4


def test_parallel_fatal_crashes_fail_loudly():
    tasks = probe_tasks(2)
    chaos = ChaosPolicy(seed=8, crash_rate=1.0, max_attempt=5)
    out = run_tasks(tasks, jobs=2, retries=1, backoff_s=0.01, chaos=chaos)
    assert [r.outcome for r in out] == ["failed"] * 2
    assert all("worker process died" in r.error for r in out)


def test_parallel_hangs_require_timeout():
    chaos = ChaosPolicy(seed=1, hang_rate=0.5, hang_s=30.0)
    with pytest.raises(ConfigurationError):
        run_tasks(probe_tasks(2), jobs=2, chaos=chaos)
    with pytest.raises(ConfigurationError):
        run_tasks(probe_tasks(2), jobs=2, timeout_s=60.0, chaos=chaos)


def test_serial_and_parallel_chaos_agree_on_accounting(tmp_path):
    """Same policy, same tasks: identical outcomes, attempts, counters."""
    tasks = probe_tasks(5)
    chaos = ChaosPolicy(seed=12, crash_rate=0.3, transient_rate=0.4,
                        max_attempt=2)

    def run(jobs):
        with obs.use_registry(obs.MetricsRegistry()) as registry:
            out = run_tasks(tasks, jobs=jobs, retries=3, backoff_s=0.01,
                            chaos=chaos)
            counters = registry.snapshot()["counters"]
        return out, {k: v for k, v in counters.items()
                     if k.startswith("runtime.chaos.")}

    serial, serial_counters = run(1)
    parallel, parallel_counters = run(2)
    assert [r.value for r in serial] == [r.value for r in parallel]
    assert [r.attempts for r in serial] == [r.attempts for r in parallel]
    assert serial_counters == parallel_counters
