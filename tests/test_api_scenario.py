"""Tests for the repro.api.Scenario facade."""

import pytest

from repro import Scenario
from repro.analysis.scenarios import delay_constraints_for
from repro.core.conflict import conflict_graph
from repro.core.minslots import minimum_slots
from repro.errors import ConfigurationError
from repro.mesh16.frame import default_frame_config
from repro.net.flows import Flow, FlowSet
from repro.net.routing import route_all
from repro.net.topology import chain_topology, grid_topology


def _flows():
    return [Flow("voip0", src=0, dst=5, rate_bps=80_000,
                 delay_budget_s=0.05)]


def test_scenario_is_reexported_from_repro():
    import repro

    assert repro.Scenario is Scenario
    assert "Scenario" in repro.__all__


def test_constructor_accepts_flowset_or_iterable():
    topo = chain_topology(3)
    flows = [Flow("f", src=0, dst=2, rate_bps=1000)]
    from_list = Scenario(topo, flows)
    from_set = Scenario(topo, FlowSet(flows))
    assert isinstance(from_list.flows, FlowSet)
    assert from_list.flows.names() == from_set.flows.names() == ["f"]


def test_default_frame_is_the_standard_one():
    scenario = Scenario(chain_topology(3),
                        [Flow("f", src=0, dst=2, rate_bps=1000)])
    default = default_frame_config()
    assert scenario.frame.data_slots == default.data_slots
    assert scenario.frame.frame_duration_s == default.frame_duration_s


def test_route_is_chainable_and_routes_flows():
    scenario = Scenario(chain_topology(6), _flows())
    assert scenario.route() is scenario
    assert all(f.is_routed for f in scenario.flows)


def test_schedule_requires_routed_flows():
    scenario = Scenario(chain_topology(6), _flows())
    with pytest.raises(ConfigurationError, match=r"call \.route\(\)"):
        scenario.schedule()


def test_facade_matches_the_longhand_chain():
    """Scenario must produce exactly what the 6-import chain produces."""
    topo = chain_topology(6)
    frame = default_frame_config()

    # long-hand
    flows = route_all(topo, FlowSet(_flows()))
    demands = flows.link_demands(frame.frame_duration_s,
                                 frame.data_slot_capacity_bits)
    conflicts = conflict_graph(topo, hops=2, links=demands.keys())
    longhand = minimum_slots(
        conflicts, demands, frame.data_slots,
        delay_constraints=delay_constraints_for(flows, frame))

    # facade
    facade = Scenario(topo, _flows()).route().schedule()

    assert facade.slots == longhand.slots
    assert facade.feasible == longhand.feasible
    assert facade.schedule.to_dict() == longhand.schedule.to_dict()


def test_intermediates_are_inspectable():
    scenario = Scenario(chain_topology(4), [
        Flow("f", src=0, dst=3, rate_bps=64_000, delay_budget_s=0.1)])
    scenario.route()
    demands = scenario.demands
    assert demands and all(isinstance(v, int) for v in demands.values())
    assert set(scenario.conflicts.nodes) == set(demands)
    constraints = scenario.delay_constraints
    assert len(constraints) == 1 and constraints[0].name == "f"


def test_schedule_result_is_kept_on_the_scenario():
    scenario = Scenario(chain_topology(4),
                        [Flow("f", src=0, dst=3, rate_bps=64_000)])
    result = scenario.route().schedule()
    assert scenario.minslots is result


def test_enforce_delay_off_drops_constraints():
    scenario = Scenario(chain_topology(6), _flows())
    scenario.route()
    relaxed = scenario.schedule(enforce_delay=False)
    assert relaxed.feasible


def test_simulate_requires_a_schedule_first():
    scenario = Scenario(chain_topology(4),
                        [Flow("f", src=0, dst=3, rate_bps=64_000)])
    scenario.route()
    with pytest.raises(ConfigurationError, match="schedule"):
        scenario.simulate(duration_s=1.0, seed=1)


def test_simulate_runs_the_emulation_end_to_end():
    scenario = Scenario(grid_topology(2, 2), [
        Flow("voip0", src=3, dst=0, rate_bps=80_000, delay_budget_s=0.1)])
    scenario.route().schedule()
    run = scenario.simulate(duration_s=1.5, seed=11)
    assert "voip0" in run.qos
    assert run.qos["voip0"].received > 0


def test_simulate_is_seed_reproducible():
    def qos():
        scenario = Scenario(grid_topology(2, 2), [
            Flow("voip0", src=3, dst=0, rate_bps=80_000,
                 delay_budget_s=0.1)])
        scenario.route().schedule()
        run = scenario.simulate(duration_s=1.0, seed=5)
        q = run.qos["voip0"]
        return (q.sent, q.received, q.p95_delay_s)

    assert qos() == qos()


def test_repr_mentions_topology_and_flows():
    scenario = Scenario(chain_topology(5), _flows())
    text = repr(scenario)
    assert "chain5" in text and "1 flows" in text


class TestServiceFlowScenario:
    def _service_flows(self):
        from repro.qos import ServiceClass, ServiceFlow, TrafficContract

        frame = default_frame_config()
        slot_rate = frame.data_slot_capacity_bits / frame.frame_duration_s
        return [
            ServiceFlow("voip0", 1, 0, ServiceClass.UGS, TrafficContract(
                min_reserved_rate_bps=2 * slot_rate,
                max_sustained_rate_bps=2 * slot_rate, max_latency_s=0.05)),
            ServiceFlow("bulk0", 2, 0, ServiceClass.BE, TrafficContract(
                max_sustained_rate_bps=4 * slot_rate)),
        ]

    def test_exactly_one_flow_argument(self):
        from repro.qos import ServiceFlowSet

        topo = chain_topology(3)
        with pytest.raises(ConfigurationError, match="exactly one"):
            Scenario(topo)
        with pytest.raises(ConfigurationError, match="exactly one"):
            Scenario(topo, flows=_flows(),
                     service_flows=ServiceFlowSet(self._service_flows()))

    def test_service_flows_project_to_plain_flows(self):
        from repro.qos import ServiceFlowSet

        scenario = Scenario(chain_topology(3),
                            service_flows=self._service_flows())
        assert isinstance(scenario.service_flows, ServiceFlowSet)
        assert scenario.flows.names() == ["voip0", "bulk0"]
        assert scenario.flows.get("voip0").delay_budget_s == 0.05

    def test_route_routes_service_flows(self):
        scenario = Scenario(chain_topology(3),
                            service_flows=self._service_flows()).route()
        assert scenario.service_flows.get("bulk0").route == ((2, 1), (1, 0))
        assert scenario.flows.get("bulk0").route == ((2, 1), (1, 0))

    def test_simulate_qos_needs_service_flows(self):
        scenario = Scenario(chain_topology(3), flows=_flows())
        with pytest.raises(ConfigurationError, match="service_flows"):
            scenario.simulate_qos()

    def test_simulate_qos_end_to_end(self):
        from repro.qos import QosRunResult, ServiceClass

        scenario = Scenario(chain_topology(3),
                            service_flows=self._service_flows())
        result = scenario.simulate_qos("drr", num_frames=50)
        assert isinstance(result, QosRunResult)
        assert result.discipline == "drr"
        assert result.stats_for(ServiceClass.UGS).latency_violations == 0
        assert scenario.service_flows.get("voip0").is_routed


class TestScenarioMobility:
    def _stream(self):
        from repro.mobility import TopologyStream
        from repro.mobility.models import ConstantVelocityModel

        positions = {0: (0.0, 0.0), 1: (80.0, 0.0), 2: (0.0, 80.0),
                     3: (80.0, 80.0), 4: (160.0, 40.0)}
        velocities = {n: (0.0, 0.0) for n in positions}
        velocities[4] = (-10.0, 0.0)
        model = ConstantVelocityModel(positions, velocities, 10.0)
        return TopologyStream(model, 100.0, dt=1.0)

    def test_mobility_derives_the_union_topology(self):
        scenario = Scenario(mobility=self._stream(),
                            flows=[Flow("f0", src=4, dst=0,
                                        rate_bps=64_000,
                                        delay_budget_s=0.5)])
        assert sorted(scenario.topology.graph.nodes) == [0, 1, 2, 3, 4]
        assert scenario.mobility is not None

    def test_mobility_and_topology_are_mutually_exclusive(self):
        with pytest.raises(ConfigurationError, match="not both"):
            Scenario(chain_topology(3), flows=_flows(),
                     mobility=self._stream())
        with pytest.raises(ConfigurationError, match="topology= or"):
            Scenario(flows=_flows())

    def test_simulate_mobility_end_to_end(self):
        from repro.mobility.run import MobilityRunResult

        scenario = Scenario(mobility=self._stream(),
                            flows=[Flow("f0", src=3, dst=0,
                                        rate_bps=64_000,
                                        delay_budget_s=0.5)])
        result = scenario.simulate_mobility()
        assert isinstance(result, MobilityRunResult)
        assert result.conflict_ok and result.guarantee_ok
        assert scenario.engine.stats["index_builds"] > 0

    def test_simulate_mobility_needs_the_stream(self):
        scenario = Scenario(chain_topology(3), flows=_flows())
        with pytest.raises(ConfigurationError, match="mobility="):
            scenario.simulate_mobility()


class TestSolverPolicySeam:
    """Scenario(solver=) and the deprecated schedule() kwargs (ISSUE 8)."""

    def _disk(self):
        from repro.net.topology import random_disk_topology

        topo = random_disk_topology(16, radio_range=120.0, area=350.0,
                                    seed=11)
        nodes = sorted(topo.nodes)
        return topo, [Flow(f"f{i}", src=nodes[i], dst=nodes[-1 - i],
                           rate_bps=60_000, delay_budget_s=0.1)
                      for i in range(4)]

    def test_solver_accepts_policy_mode_string(self):
        topo, flows = self._disk()
        scenario = Scenario(topo, flows, solver="greedy")
        result = scenario.route().schedule()
        assert result.meta["mode"] == "greedy"
        assert scenario.solver.mode == "greedy"

    def test_solver_accepts_full_policy(self):
        from repro import SolverPolicy

        topo, flows = self._disk()
        policy = SolverPolicy(mode="zoned", max_zone_links=6)
        scenario = Scenario(topo, flows, solver=policy)
        result = scenario.route().schedule()
        assert result.meta["mode"] == "zoned"
        assert result.schedule.violations(scenario.conflicts) == []

    def test_default_solver_is_auto_and_exact_at_paper_scale(self):
        topo, flows = self._disk()
        default = Scenario(topo, list(flows)).route().schedule()
        exact = Scenario(topo, list(flows),
                         solver="exact").route().schedule()
        assert default.meta is None
        assert default.slots == exact.slots
        assert default.probes == exact.probes
        assert default.schedule.to_dict() == exact.schedule.to_dict()

    def test_shared_engine_policy_flows_into_the_scenario(self):
        from repro import SolverEngine

        topo, flows = self._disk()
        engine = SolverEngine(policy="greedy")
        scenario = Scenario(topo, flows, engine=engine)
        assert scenario.solver is engine.policy
        assert scenario.route().schedule().meta["mode"] == "greedy"

    def test_explicit_solver_wins_over_the_engine_policy(self):
        from repro import SolverEngine

        topo, flows = self._disk()
        engine = SolverEngine(policy="greedy")
        scenario = Scenario(topo, flows, engine=engine, solver="exact")
        assert scenario.route().schedule().meta is None

    def test_deprecated_schedule_kwargs_warn_once_and_still_work(self):
        import warnings

        from repro import _deprecation

        topo, flows = self._disk()
        scenario = Scenario(topo, list(flows)).route()
        plain = scenario.schedule()
        _deprecation.reset_warned()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            shimmed = scenario.schedule(search="binary")
            scenario.schedule(search="binary")
        deprecations = [w for w in caught
                        if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 1
        assert "SolverPolicy" in str(deprecations[0].message)
        assert shimmed.slots == plain.slots  # binary finds the same K

    def test_deprecated_max_region_kwarg_folds_into_the_policy(self):
        import warnings

        from repro import _deprecation

        topo, flows = self._disk()
        scenario = Scenario(topo, list(flows)).route()
        baseline = scenario.schedule()
        _deprecation.reset_warned()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            capped = scenario.schedule(max_region=baseline.slots)
        assert any(issubclass(w.category, DeprecationWarning)
                   for w in caught)
        assert capped.slots == baseline.slots


class TestInterferenceSeam:
    """Scenario(interference=...) and its hops= interplay (ISSUE 10)."""

    def test_hops_and_interference_are_mutually_exclusive(self):
        from repro.phy.models import ProtocolModel

        with pytest.raises(ConfigurationError, match="not both"):
            Scenario(chain_topology(6), _flows(), hops=2,
                     interference=ProtocolModel(2))

    def test_default_is_the_two_hop_protocol_model(self):
        from repro.phy.models import ProtocolModel

        scenario = Scenario(chain_topology(6), _flows())
        assert isinstance(scenario.interference, ProtocolModel)
        assert scenario.interference.hops == 2
        assert scenario.hops == 2

    def test_hops_spelling_still_works(self):
        scenario = Scenario(chain_topology(6), _flows(), hops=1)
        assert scenario.interference.hops == 1
        assert scenario.hops == 1

    def test_bare_int_interference_warns_once_and_coerces(self):
        from repro._deprecation import reset_warned

        reset_warned()
        with pytest.warns(DeprecationWarning, match="hops="):
            scenario = Scenario(chain_topology(6), _flows(),
                                interference=1)
        assert scenario.interference.hops == 1

    def test_sinr_backend_flows_through_conflicts(self):
        from repro.phy.models import SinrModel

        topo = chain_topology(8, spacing=90.0)
        flows = [Flow("f", src=0, dst=7, rate_bps=80_000,
                      delay_budget_s=0.2)]
        proto = Scenario(topo, flows).route()
        sinr = Scenario(topo, flows, interference=SinrModel()).route()
        assert sinr.hops is None
        # physical interference hears further on this spaced chain
        assert (sinr.conflicts.number_of_edges()
                > proto.conflicts.number_of_edges())

    def test_sinr_backend_schedules_end_to_end(self):
        from repro.phy.models import SinrModel

        topo = chain_topology(6, spacing=90.0)
        scenario = Scenario(topo, _flows(), interference=SinrModel())
        result = scenario.route().schedule()
        assert result.feasible
        assert result.schedule.violations(scenario.conflicts) == []

    def test_degenerate_hops_is_rejected_at_the_conflict_graph(self):
        scenario = Scenario(chain_topology(4),
                            [Flow("f", src=0, dst=3, rate_bps=1000)],
                            hops=3)
        scenario.route()
        with pytest.raises(ConfigurationError, match="degenerates"):
            scenario.conflicts

    def test_minimum_slots_builds_conflicts_through_the_seam(self):
        from repro.phy.models import SinrModel

        topo = chain_topology(6, spacing=90.0)
        frame = default_frame_config()
        flows = route_all(topo, FlowSet(_flows()))
        demands = flows.link_demands(frame.frame_duration_s,
                                     frame.data_slot_capacity_bits)
        via_topology = minimum_slots(None, demands, frame.data_slots,
                                     topology=topo, hops=2)
        prebuilt = minimum_slots(conflict_graph(topo, hops=2,
                                                links=demands.keys()),
                                 demands, frame.data_slots)
        assert via_topology.slots == prebuilt.slots
        sinr = minimum_slots(None, demands, frame.data_slots,
                             topology=topo, interference=SinrModel())
        assert sinr.slots is not None

    def test_minimum_slots_rejects_mixed_spellings(self):
        topo = chain_topology(4)
        frame = default_frame_config()
        flows = route_all(topo, FlowSet(
            [Flow("f", src=0, dst=3, rate_bps=1000)]))
        demands = flows.link_demands(frame.frame_duration_s,
                                     frame.data_slot_capacity_bits)
        with pytest.raises(ConfigurationError, match="needs conflicts"):
            minimum_slots(None, demands, frame.data_slots)
        conflicts = conflict_graph(topo, hops=2, links=demands.keys())
        with pytest.raises(ConfigurationError, match="not both"):
            minimum_slots(conflicts, demands, frame.data_slots,
                          topology=topo)
