"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.mesh16.frame import default_frame_config
from repro.net.topology import (
    binary_tree_topology,
    chain_topology,
    grid_topology,
    star_topology,
)
from repro.sim.engine import Simulator
from repro.sim.random import RngRegistry


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def rngs() -> RngRegistry:
    return RngRegistry(seed=1234)


@pytest.fixture
def chain5():
    return chain_topology(5)


@pytest.fixture
def chain8():
    return chain_topology(8)


@pytest.fixture
def grid33():
    return grid_topology(3, 3)


@pytest.fixture
def star4():
    return star_topology(4)


@pytest.fixture
def btree2():
    return binary_tree_topology(2)


@pytest.fixture
def frame_config():
    return default_frame_config()
