"""Property-based tests for the difference-constraint solver."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bellman_ford import DifferenceConstraints
from repro.errors import InfeasibleScheduleError


@st.composite
def constraint_systems(draw):
    """Random small systems over integer variables 0..n-1."""
    n = draw(st.integers(min_value=2, max_value=8))
    m = draw(st.integers(min_value=1, max_value=20))
    edges = []
    for ____ in range(m):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u == v:
            continue
        w = draw(st.integers(min_value=-10, max_value=10))
        edges.append((u, v, float(w)))
    return edges


@given(constraint_systems())
@settings(max_examples=200, deadline=None)
def test_solution_satisfies_every_constraint_or_certificate_is_negative(
        edges):
    """Soundness both ways: a returned solution satisfies all constraints;
    a raised infeasibility carries a genuinely negative cycle whose edges
    are real constraints."""
    system = DifferenceConstraints()
    for u, v, w in edges:
        system.add(u, v, w)
    try:
        solution = system.solve()
    except InfeasibleScheduleError as exc:
        cycle = exc.certificate
        assert cycle.weight < 0
        # every consecutive cycle pair is an actual constraint edge
        edge_set = {(u, v) for u, v, ____ in edges}
        ring = cycle.vertices + [cycle.vertices[0]]
        for u, v in zip(ring, ring[1:]):
            assert (u, v) in edge_set
        # and the cycle weight telescopes from real edge weights
        total = 0.0
        for u, v in zip(ring, ring[1:]):
            total += min(w for (eu, ev, w) in edges if (eu, ev) == (u, v))
        assert total <= cycle.weight + 1e-9
    else:
        for u, v, w in edges:
            assert solution[v] <= solution[u] + w + 1e-9


@given(constraint_systems())
@settings(max_examples=100, deadline=None)
def test_origin_pinned_solution_also_feasible(edges):
    system = DifferenceConstraints()
    for u, v, w in edges:
        system.add(u, v, w)
    # bound everything relative to an origin so it is reachable
    for vertex in list(system.vertices()):
        system.add_upper("o", vertex, 100)
        system.add_lower("o", vertex, -100)
    try:
        solution = system.solve(origin="o")
    except InfeasibleScheduleError:
        return
    assert solution["o"] == 0.0
    for u, v, w in edges:
        assert solution[v] <= solution[u] + w + 1e-9
