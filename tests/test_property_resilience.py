"""Property-based chaos tests for the lossy control plane.

Each example runs a short end-to-end overlay simulation on a chain with a
drawn ambient control-loss rate, a drifting tail node, and two schedule
floods, then checks the resilience invariants that must hold at *any*
loss rate:

- applied schedule versions are monotone per node (holdover never goes
  backwards);
- at every sampled instant the union of concurrently executed slot maps
  is conflict-free (the make-before-break guarantee);
- a muted node never transmits anything -- data, beacons, announcements.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.conflict import conflict_graph
from repro.core.schedule import Schedule, SlotBlock
from repro.mesh16.frame import default_frame_config
from repro.mesh16.network import ControlPlane
from repro.net.topology import chain_topology
from repro.overlay.distribution import ScheduleDistributor
from repro.overlay.emulation import TdmaOverlay
from repro.overlay.sync import SyncConfig, SyncDaemon
from repro.phy.channel import BroadcastChannel
from repro.resilience import HealthMonitor, ResilienceConfig
from repro.sim.clock import DriftingClock
from repro.sim.engine import Simulator
from repro.sim.random import RngRegistry
from repro.sim.trace import Trace
from repro.units import ppm


def run_chaos_scenario(loss, seed, drift_ppm):
    topology = chain_topology(4)
    gateway, victim = 0, 3
    sim = Simulator()
    trace = Trace()
    config = default_frame_config()
    channel = BroadcastChannel(sim, topology, config.phy, trace)
    rngs = RngRegistry(seed=seed)
    channel.set_control_error_model(rngs.stream("control_loss"),
                                    default_error_rate=loss)
    clocks = {node: DriftingClock(
        skew=ppm(drift_ppm) if node == victim else 0.0)
        for node in topology.nodes}
    daemons = {node: SyncDaemon(node, gateway, clocks[node], SyncConfig(),
                                rngs.stream(f"sync/{node}"), trace)
               for node in topology.nodes}
    resilience = ResilienceConfig(drift_bound_ppm=max(drift_ppm, 1.0),
                                  reflood_interval_frames=4,
                                  mute_guard_multiple=2.0)
    health = HealthMonitor(config, resilience, root=gateway, trace=trace)
    overlay = TdmaOverlay(
        sim, topology, channel, config,
        ControlPlane(topology, gateway, config),
        Schedule(config.data_slots), clocks, daemons,
        on_packet=lambda n, p: None, trace=trace, health=health)
    conflicts = conflict_graph(topology, hops=2)
    distributor = ScheduleDistributor(overlay, gateway,
                                      resilience=resilience,
                                      conflicts=conflicts)
    overlay.attach_distributor(distributor)
    overlay.start()

    distributor.announce(
        Schedule(config.data_slots, {(0, 1): SlotBlock(0, 2),
                                     (2, 3): SlotBlock(4, 2)}),
        activation_frame=15)
    sim.schedule(0.4, lambda: distributor.announce(
        Schedule(config.data_slots, {(1, 2): SlotBlock(0, 2),
                                     (2, 3): SlotBlock(8, 2)}),
        activation_frame=60))

    applied_history = {node: [0] for node in topology.nodes}
    union_violations = []

    def sample():
        for node in topology.nodes:
            applied_history[node].append(distributor.applied_version[node])
        executed = {}
        for node in topology.nodes:
            for link, block in distributor.applied_assignments[node]:
                if link[0] == node:
                    executed[link] = block
        union = Schedule(config.data_slots, executed)
        union_violations.extend(union.violations(conflicts))

    for i in range(1, 60):
        sim.schedule_at(0.03 * i, sample)
    sim.run(until=1.9)
    return topology, trace, health, applied_history, union_violations


@pytest.mark.chaos
@given(loss=st.floats(min_value=0.0, max_value=0.6),
       seed=st.integers(0, 10_000),
       drift_ppm=st.sampled_from([0.0, 20.0, 80.0, 200.0]))
@settings(max_examples=15, deadline=None)
def test_resilience_invariants_hold_at_any_loss(loss, seed, drift_ppm):
    topology, trace, health, applied_history, union_violations = \
        run_chaos_scenario(loss, seed, drift_ppm)

    # 1. applied versions are monotone per node
    for node, history in applied_history.items():
        assert history == sorted(history), \
            f"node {node} applied versions went backwards: {history}"

    # 2. concurrently executed slot maps never conflict
    assert union_violations == []

    # 3. a muted node never transmits while muted
    for node in topology.nodes:
        windows = [(start, end if end is not None else float("inf"))
                   for start, end in health.mute_windows(node)]
        if not windows:
            continue
        for record in trace.records("phy.tx"):
            if record["node"] != node:
                continue
            assert not any(start <= record.time < end
                           for start, end in windows), \
                f"muted node {node} transmitted at {record.time}"
