"""Synchronization daemon logic (unit level, no channel)."""

import numpy as np
import pytest

from repro.mesh16.messages import SyncBeacon
from repro.overlay.sync import SyncConfig, SyncDaemon
from repro.sim.clock import DriftingClock, PerfectClock
from repro.units import US, ppm


def daemon(node=1, root=0, clock=None, jitter=0.0, enabled=True,
           skew_comp=False, seed=3):
    return SyncDaemon(
        node, root, clock or DriftingClock(),
        SyncConfig(timestamp_jitter_s=jitter, enabled=enabled,
                   skew_compensation=skew_comp),
        np.random.default_rng(seed))


def beacon(root_time, round_id=1, hops=0, origin=0, sender=0):
    return SyncBeacon(origin=origin, sender=sender,
                      root_time_at_tx=root_time, round_id=round_id,
                      hops=hops)


class TestRoot:
    def test_root_is_always_synced(self):
        root = daemon(node=0, root=0)
        assert root.is_root and root.synced

    def test_root_mints_increasing_rounds(self):
        root = daemon(node=0, root=0, clock=PerfectClock())
        b1 = root.make_beacon(1.0)
        b2 = root.make_beacon(2.0)
        assert b2.round_id == b1.round_id + 1
        assert b1.hops == 0

    def test_root_stamps_its_clock(self):
        clock = DriftingClock(offset=0.5)
        root = daemon(node=0, root=0, clock=clock)
        b = root.make_beacon(1.0)
        assert b.root_time_at_tx == pytest.approx(1.5)

    def test_root_ignores_beacons(self):
        root = daemon(node=0, root=0)
        assert not root.on_beacon(beacon(5.0), 1.0, 0.0, 0.0)


class TestAdoption:
    def test_adoption_steps_clock_to_root_estimate(self):
        clock = DriftingClock(offset=0.01)
        node = daemon(clock=clock)
        airtime, prop = 200e-6, 1e-6
        assert node.on_beacon(beacon(5.0), 1.0, airtime, prop)
        assert clock.local_time(1.0) == pytest.approx(5.0 + airtime + prop)
        assert node.synced

    def test_stale_round_rejected(self):
        node = daemon()
        assert node.on_beacon(beacon(5.0, round_id=3), 1.0, 0.0, 0.0)
        assert not node.on_beacon(beacon(9.0, round_id=2), 2.0, 0.0, 0.0)
        assert not node.on_beacon(beacon(9.0, round_id=3, hops=5),
                                  2.0, 0.0, 0.0)

    def test_closer_estimate_same_round_adopted(self):
        node = daemon()
        assert node.on_beacon(beacon(5.0, round_id=3, hops=4), 1.0, 0.0, 0.0)
        assert node.state.hops == 5
        assert node.on_beacon(beacon(5.1, round_id=3, hops=1), 2.0, 0.0, 0.0)
        assert node.state.hops == 2

    def test_disabled_sync_never_adopts(self):
        node = daemon(enabled=False)
        assert not node.on_beacon(beacon(5.0), 1.0, 0.0, 0.0)
        assert node.make_beacon(1.0) is None


class TestRelay:
    def test_unsynced_node_stays_silent(self):
        node = daemon()
        assert node.make_beacon(1.0) is None

    def test_synced_node_relays_with_own_hops(self):
        node = daemon(clock=PerfectClock())
        node.on_beacon(beacon(1.0, round_id=2, hops=1), 1.0, 0.0, 0.0)
        relay = node.make_beacon(2.0)
        assert relay is not None
        assert relay.round_id == 2
        assert relay.hops == 2
        assert relay.sender == 1
        assert relay.origin == 0

    def test_relay_stamp_is_own_estimate(self):
        clock = DriftingClock()
        node = daemon(clock=clock)
        node.on_beacon(beacon(10.0), 1.0, 0.0, 0.0)  # clock now reads 10
        relay = node.make_beacon(2.0)
        assert relay.root_time_at_tx == pytest.approx(11.0)


class TestJitter:
    def test_jitter_bounds_adoption_error(self):
        for seed in range(5):
            clock = DriftingClock()
            node = daemon(clock=clock, jitter=2 * US, seed=seed)
            node.on_beacon(beacon(5.0), 1.0, 0.0, 0.0)
            error = clock.local_time(1.0) - 5.0
            # tx stamp jitter is the sender's; only our rx jitter applies
            assert abs(error) <= 2 * US + 1e-12

    def test_zero_jitter_exact(self):
        clock = DriftingClock()
        node = daemon(clock=clock, jitter=0.0)
        node.on_beacon(beacon(5.0), 1.0, 100e-6, 1e-6)
        assert clock.local_time(1.0) == pytest.approx(5.0 + 101e-6)


class TestSkewCompensation:
    def test_rate_disciplined_after_window(self):
        skew = ppm(20)
        clock = DriftingClock(skew=skew)
        node = daemon(clock=clock, skew_comp=True, jitter=0.0)
        # beacons every 0.5 s from a perfect root; root time == true time
        round_id = 1
        for k in range(1, 8):
            t = 0.5 * k
            node.on_beacon(beacon(t, round_id=round_id), t, 0.0, 0.0)
            round_id += 1
        # after >= 1 s of telescoped steps the daemon should have
        # disciplined the 20 ppm oscillator well below 5 ppm effective
        assert abs(clock.effective_rate - 1.0) < ppm(5)

    def test_without_compensation_rate_untouched(self):
        skew = ppm(20)
        clock = DriftingClock(skew=skew)
        node = daemon(clock=clock, skew_comp=False, jitter=0.0)
        for k in range(1, 8):
            t = 0.5 * k
            node.on_beacon(beacon(t, round_id=k), t, 0.0, 0.0)
        assert clock.effective_rate == pytest.approx(1.0 + skew)


def test_invalid_config():
    from repro.errors import ConfigurationError
    with pytest.raises(ConfigurationError):
        SyncConfig(timestamp_jitter_s=-1.0)
