#!/usr/bin/env python3
"""Inside the emulation layer: clocks, beacons, guard times.

The part of the ICDCS paper that is *not* scheduling: how do you hold a
TDMA frame together on WiFi hardware whose nodes each keep their own
(cheap, drifting) clock?  This demo:

1. dimensions the guard time from a drift bound and resync period;
2. runs the mesh with synchronization ON and shows the clock error
   plateauing under the guard (and zero slot collisions);
3. runs it again with synchronization OFF and watches the error grow
   linearly until transmissions start bleeding into neighbouring slots.

Run:  python examples/emulation_demo.py          (~30 seconds)
"""

from repro.analysis.reporting import format_table
from repro.analysis.scenarios import (
    make_voip_flows,
    run_tdma_scenario,
    schedule_for_flows,
)
from repro.mesh16.frame import default_frame_config
from repro.net.topology import grid_topology
from repro.overlay.guard import max_resync_interval_s, required_guard_s
from repro.overlay.sync import SyncConfig
from repro.sim.random import RngRegistry
from repro.traffic.voip import G729
from repro.units import US

DRIFT_PPM = 25.0
DURATION_S = 6.0


def main() -> None:
    frame = default_frame_config()
    print("== guard-time dimensioning ==")
    rows = []
    for resync_s in (0.05, 0.1, 0.5, 1.0, 5.0):
        guard = required_guard_s(DRIFT_PPM, resync_s,
                                 sync_residual_s=10 * US)
        rows.append([resync_s, f"{guard * 1e6:.0f}",
                     "yes" if guard <= frame.guard_s else "NO"])
    print(format_table(
        ["resync period s", "required guard us",
         f"fits {frame.guard_s * 1e6:.0f} us budget?"], rows))
    print(f"-> the {frame.guard_s * 1e6:.0f} us guard of the default frame "
          f"absorbs up to "
          f"{max_resync_interval_s(frame.guard_s, DRIFT_PPM, 10 * US):.2f} s "
          f"between resyncs at {DRIFT_PPM:.0f} ppm\n")

    topology = grid_topology(3, 3)
    rngs = RngRegistry(seed=16)
    # enough calls to pack the data subframe densely: with adjacent
    # conflicting blocks everywhere, a clock that slips more than the
    # guard (plus in-slot slack) has nowhere safe to land
    flows = make_voip_flows(topology, 7, rngs, codec=G729, gateway=0,
                            delay_budget_s=0.1)
    schedule = schedule_for_flows(topology, flows, frame)

    print(f"== running {topology.name} at {DRIFT_PPM:.0f} ppm drift for "
          f"{DURATION_S:.0f} s ==")
    arms = [
        ("beacons every control cycle", SyncConfig(enabled=True),
         DURATION_S),
        ("beacons + skew discipline",
         SyncConfig(enabled=True, skew_compensation=True), DURATION_S),
        # the control arm runs longer: free-running clocks need time to
        # drift past the guard + in-slot slack before slots actually bleed
        ("synchronization disabled", SyncConfig(enabled=False),
         4 * DURATION_S),
    ]
    rows = []
    for label, sync, duration in arms:
        run = run_tdma_scenario(topology, flows, frame, schedule,
                                duration,
                                rngs=RngRegistry(seed=16).spawn(label),
                                drift_ppm=DRIFT_PPM, sync_config=sync,
                                codec=G729)
        samples = run.extras["sync_error_samples"]
        rows.append([
            label,
            f"{run.extras['max_sync_error_s'] * 1e6:.1f}",
            f"{samples[-1] * 1e6:.1f}" if samples else "-",
            run.extras["slot_collisions"],
            f"{run.total_loss_fraction():.4f}",
        ])
    print(format_table(
        ["arm", "max clock err us", "final err us", "slot collisions",
         "voip loss"], rows))
    print(f"\n(guard budget is {frame.guard_s * 1e6:.0f} us: the emulation "
          "holds the schedule exactly as long as the clock error stays "
          "inside it. Once it does not, transmissions bleed into "
          "neighbouring slots -- the collision counter picks that up at "
          "overhearing nodes first, because the 2-hop conflict model keeps "
          "true interferers more than a one-slot slip apart; guarantees "
          "erode from there as drift accumulates.)")


if __name__ == "__main__":
    main()
