#!/usr/bin/env python3
"""Call admission on a mesh: accept until the schedule says stop.

Feeds a stream of G.711 call requests (random endpoints through the
gateway) to the :class:`repro.AdmissionController`.  Each acceptance
re-runs the minimum-slot search, so the table shows the guaranteed region
filling up until a request no longer fits -- and capacity returning when a
call hangs up.

Run:  python examples/admission_control.py          (~1 minute)
"""

from repro import AdmissionController, Flow, G711, grid_topology
from repro.analysis.reporting import format_table
from repro.mesh16.frame import default_frame_config
from repro.sim.random import RngRegistry


def main() -> None:
    topology = grid_topology(3, 3)
    frame = default_frame_config()
    controller = AdmissionController(
        topology,
        frame_slots=frame.data_slots,
        frame_duration_s=frame.frame_duration_s,
        slot_capacity_bits=frame.data_slot_capacity_bits,
    )
    rng = RngRegistry(seed=99).stream("calls")

    print(f"mesh {topology.name}; guaranteed region cap = "
          f"{frame.data_slots} slots\n")
    rows = []
    admitted_names = []
    for index in range(14):
        other = int(rng.choice([n for n in topology.nodes if n != 0]))
        src, dst = (0, other) if index % 2 else (other, 0)
        flow = Flow(f"call{index}", src, dst,
                    rate_bps=G711.wire_rate_bps, delay_budget_s=0.08)
        decision = controller.try_admit(flow)
        if decision.admitted:
            admitted_names.append(flow.name)
        rows.append([
            flow.name, f"{src}->{dst}",
            "ADMIT" if decision.admitted else "reject",
            decision.slots_used,
            controller.admitted_count(),
        ])
        # a third of the time, the oldest call hangs up
        if admitted_names and index % 3 == 2:
            oldest = admitted_names.pop(0)
            controller.release(oldest)
            rows.append([oldest, "", "hangup", controller.slots_used,
                         controller.admitted_count()])

    print(format_table(
        ["call", "route", "decision", "region slots", "active calls"],
        rows, title="admission log"))

    print("\nfinal schedule:")
    if controller.schedule is not None:
        for link, block in controller.schedule.items():
            print(f"  {link[0]} -> {link[1]}: slots "
                  f"{block.start}..{block.end - 1}")


if __name__ == "__main__":
    main()
