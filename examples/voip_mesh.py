#!/usr/bin/env python3
"""VoIP over a 3x3 mesh: TDMA emulation vs native 802.11 DCF.

This is the paper's headline scenario.  Ten G.729 calls are offered to a
nine-node grid mesh with an internet gateway at node 0:

- the **TDMA emulation** runs admission control (greedy re-scheduling with
  the delay-aware ILP) and carries only the schedulable subset -- every
  admitted call keeps its 50 ms / zero-loss guarantee;
- **DCF** carries everything offered and lets contention sort it out.

Both stacks then run a full packet-level simulation on identical workloads
and the per-call QoS is printed side by side.

Run:  python examples/voip_mesh.py          (~1 minute)
"""

from repro.analysis.reporting import format_table
from repro.analysis.scenarios import (
    admit_flows,
    make_voip_flows,
    run_dcf_scenario,
    run_tdma_scenario,
)
from repro.mesh16.frame import default_frame_config
from repro.net.topology import grid_topology
from repro.sim.random import RngRegistry
from repro.traffic.voip import G729

OFFERED_CALLS = 10
DURATION_S = 3.0
DELAY_TARGET_S = 0.05


def main() -> None:
    topology = grid_topology(3, 3)
    frame = default_frame_config()
    rngs = RngRegistry(seed=2007)

    flows = make_voip_flows(topology, OFFERED_CALLS, rngs, codec=G729,
                            gateway=0, delay_budget_s=DELAY_TARGET_S)
    print(f"offered: {len(flows)} G.729 calls through gateway 0 "
          f"on {topology.name}")

    admitted, schedule = admit_flows(topology, flows, frame)
    rejected = sorted(set(flows.names()) - set(admitted.names()))
    print(f"admission control accepted {len(admitted)} calls "
          f"(rejected: {', '.join(rejected) if rejected else 'none'}) "
          f"using {schedule.makespan()} of {frame.data_slots} data slots")

    print("\nrunning TDMA emulation (admitted calls only)...")
    tdma = run_tdma_scenario(topology, admitted, frame, schedule,
                             DURATION_S, rngs=rngs.spawn("tdma"), codec=G729)
    print("running 802.11 DCF (all offered calls)...")
    dcf = run_dcf_scenario(topology, flows, DURATION_S,
                           rngs=rngs.spawn("dcf"), codec=G729)

    rows = []
    for name in flows.names():
        tq = tdma.qos.get(name)
        dq = dcf.qos[name]
        rows.append([
            name,
            flows.get(name).hops,
            "-" if tq is None else f"{tq.p95_delay_s * 1e3:.1f}",
            f"{dq.p95_delay_s * 1e3:.1f}",
            "-" if tq is None else f"{tq.loss_fraction:.3f}",
            f"{dq.loss_fraction:.3f}",
            "-" if tq is None else f"{tq.mos(G729):.2f}",
            f"{dq.mos(G729):.2f}",
        ])
    print()
    print(format_table(
        ["call", "hops", "tdma p95 ms", "dcf p95 ms", "tdma loss",
         "dcf loss", "tdma MOS", "dcf MOS"], rows,
        title="per-call QoS ('-' = rejected by admission control)"))

    print(f"\naggregate loss: tdma {tdma.total_loss_fraction():.4f}, "
          f"dcf {dcf.total_loss_fraction():.4f}")
    print(f"tdma slot collisions: {tdma.extras['slot_collisions']}, "
          f"max sync error: "
          f"{tdma.extras['max_sync_error_s'] * 1e6:.1f} us "
          f"(guard {frame.guard_s * 1e6:.0f} us)")


if __name__ == "__main__":
    main()
