#!/usr/bin/env python3
"""Quickstart: schedule guaranteed VoIP over a mesh chain in ~20 lines.

Builds a 6-node chain, asks for one G.711 call from one end to the other
with a 50 ms delay budget, runs the NET-COOP minimum-slot search (ILP
feasibility per candidate region) through the :class:`repro.Scenario`
facade, and prints the resulting conflict-free TDMA schedule together
with its end-to-end delay.

Run:  python examples/quickstart.py
"""

from repro import (
    Flow,
    G711,
    Scenario,
    chain_topology,
    path_delay_slots,
    path_wraps,
)


def main() -> None:
    scenario = Scenario(
        topology=chain_topology(6),
        flows=[Flow("voip0", src=0, dst=5, rate_bps=G711.wire_rate_bps,
                    delay_budget_s=0.05)])
    frame = scenario.frame
    print(f"topology: {scenario.topology.name}, frame: "
          f"{frame.frame_duration_s * 1e3:.0f} ms / {frame.data_slots} "
          f"data slots, slot capacity {frame.data_slot_capacity_bits} bits")

    scenario.route()
    flow = scenario.flows.get("voip0")
    print(f"flow {flow.name}: {flow.src} -> {flow.dst} over {flow.hops} "
          f"hops at {flow.rate_bps / 1e3:.0f} kb/s")

    # route -> demands -> conflict graph -> minimum-slot search, with the
    # flow's 50 ms budget enforced as a delay constraint inside the ILP
    search = scenario.schedule()
    if not search.feasible:
        raise SystemExit("no feasible schedule -- should not happen here")

    schedule = search.schedule
    print(f"\nminimum guaranteed region: {search.slots} slots "
          f"(lower bound {search.lower_bound}, "
          f"{search.iterations} ILP probes)")
    print("schedule:")
    from repro.analysis.visualize import render_schedule
    print(render_schedule(schedule))

    slot_s = frame.frame_duration_s / frame.data_slots
    delay = path_delay_slots(schedule, flow.route)
    print(f"\nend-to-end relaying delay: {delay} slots = "
          f"{delay * slot_s * 1e3:.2f} ms "
          f"({path_wraps(schedule, flow.route)} frame wraps)")
    print(f"worst-case (arrive just after your block): "
          f"{(delay + frame.data_slots) * slot_s * 1e3:.2f} ms "
          f"<= budget {flow.delay_budget_s * 1e3:.0f} ms")

    # the formal guarantee, as code (validated against packet simulation
    # in tests/test_core_guarantees.py)
    from repro.core.guarantees import check_guarantees

    report = check_guarantees(schedule, flow, frame,
                              packet_bits=G711.packet_bits)
    print(f"\nguarantee check: stable={report.stable}, "
          f"delay bound {report.delay_bound_s * 1e3:.2f} ms, "
          f"tightest link {report.tightest_link} with "
          f"{report.tightest_margin_bits:.0f} bits/frame headroom")


if __name__ == "__main__":
    main()
