#!/usr/bin/env python3
"""Quickstart: schedule guaranteed VoIP over a mesh chain in ~30 lines.

Builds a 6-node chain, asks for one G.711 call from one end to the other
with a 50 ms delay budget, runs the NET-COOP minimum-slot search (ILP
feasibility per candidate region), and prints the resulting conflict-free
TDMA schedule together with its end-to-end delay.

Run:  python examples/quickstart.py
"""

from repro import (
    DelayConstraint,
    Flow,
    FlowSet,
    G711,
    chain_topology,
    conflict_graph,
    default_frame_config,
    minimum_slots,
    path_delay_slots,
    path_wraps,
    route_all,
)


def main() -> None:
    topology = chain_topology(6)
    frame = default_frame_config()
    print(f"topology: {topology.name}, frame: "
          f"{frame.frame_duration_s * 1e3:.0f} ms / {frame.data_slots} "
          f"data slots, slot capacity {frame.data_slot_capacity_bits} bits")

    flows = route_all(topology, FlowSet([
        Flow("voip0", src=0, dst=5, rate_bps=G711.wire_rate_bps,
             delay_budget_s=0.05),
    ]))
    flow = flows.get("voip0")
    print(f"flow {flow.name}: {flow.src} -> {flow.dst} over {flow.hops} "
          f"hops at {flow.rate_bps / 1e3:.0f} kb/s")

    demands = flows.link_demands(frame.frame_duration_s,
                                 frame.data_slot_capacity_bits)
    conflicts = conflict_graph(topology, hops=2, links=demands.keys())

    slot_s = frame.frame_duration_s / frame.data_slots
    budget_slots = int(flow.delay_budget_s / slot_s)
    search = minimum_slots(
        conflicts, demands, frame_slots=frame.data_slots,
        delay_constraints=[DelayConstraint(flow.name, flow.route,
                                           budget_slots)])

    if not search.feasible:
        raise SystemExit("no feasible schedule -- should not happen here")

    schedule = search.result.schedule
    print(f"\nminimum guaranteed region: {search.slots} slots "
          f"(lower bound {search.lower_bound}, "
          f"{search.iterations} ILP probes)")
    print("schedule:")
    from repro.analysis.visualize import render_schedule
    print(render_schedule(schedule))

    delay = path_delay_slots(schedule, flow.route)
    print(f"\nend-to-end relaying delay: {delay} slots = "
          f"{delay * slot_s * 1e3:.2f} ms "
          f"({path_wraps(schedule, flow.route)} frame wraps)")
    print(f"worst-case (arrive just after your block): "
          f"{(delay + frame.data_slots) * slot_s * 1e3:.2f} ms "
          f"<= budget {flow.delay_budget_s * 1e3:.0f} ms")

    # the formal guarantee, as code (validated against packet simulation
    # in tests/test_core_guarantees.py)
    from repro.core.guarantees import check_guarantees

    report = check_guarantees(schedule, flow, frame,
                              packet_bits=G711.packet_bits)
    print(f"\nguarantee check: stable={report.stable}, "
          f"delay bound {report.delay_bound_s * 1e3:.2f} ms, "
          f"tightest link {report.tightest_link} with "
          f"{report.tightest_margin_bits:.0f} bits/frame headroom")


if __name__ == "__main__":
    main()
