#!/usr/bin/env python3
"""Multi-service mesh: guaranteed VoIP + elastic best effort, distributed
in-band.

The NET-COOP companion paper's setting end to end:

1. guaranteed VoIP flows are scheduled into the *minimum* region that meets
   their bandwidth and delay budgets (linear search + delay-aware ILP);
2. elastic best-effort transfers get the largest blocks that fit in the
   leftover slots;
3. the combined schedule is flooded through the control subframe with the
   MSH-DSCH-style distributor and activates mesh-wide on a frame boundary;
4. a packet-level run verifies the VoIP class keeps its guarantees while
   best effort moves real bytes in the background.

Run:  python examples/multi_service.py          (~1 minute)
"""

from repro.analysis.reporting import format_table
from repro.core.besteffort import schedule_two_classes
from repro.core.conflict import conflict_graph
from repro.core.schedule import Schedule
from repro.analysis.scenarios import delay_constraints_for
from repro.mesh16.frame import default_frame_config
from repro.mesh16.network import ControlPlane
from repro.net.flows import Flow, FlowSet
from repro.net.forwarding import SourceRoutedForwarder
from repro.net.routing import route_all
from repro.net.topology import grid_topology
from repro.overlay.distribution import ScheduleDistributor
from repro.overlay.emulation import TdmaOverlay
from repro.overlay.sync import SyncConfig, SyncDaemon
from repro.phy.channel import BroadcastChannel
from repro.sim.clock import DriftingClock
from repro.sim.engine import Simulator
from repro.sim.random import RngRegistry
from repro.sim.trace import Trace
from repro.traffic.sink import SinkRegistry
from repro.traffic.sources import CbrSource, PoissonSource
from repro.traffic.voip import G729
from repro.units import ppm

DURATION_S = 4.0


def main() -> None:
    topology = grid_topology(3, 3)
    frame = default_frame_config()
    rngs = RngRegistry(seed=64)

    # -- traffic mix --------------------------------------------------------
    voip = route_all(topology, FlowSet([
        Flow("voip0", 8, 0, rate_bps=G729.wire_rate_bps, delay_budget_s=0.05),
        Flow("voip1", 0, 6, rate_bps=G729.wire_rate_bps, delay_budget_s=0.05),
        Flow("voip2", 2, 0, rate_bps=G729.wire_rate_bps, delay_budget_s=0.05),
    ]))
    bulk = route_all(topology, FlowSet([
        Flow("bulk0", 0, 4, rate_bps=400_000),   # elastic downloads
        Flow("bulk1", 5, 0, rate_bps=400_000),
    ]))

    # -- two-class schedule ----------------------------------------------------
    g_demands = voip.link_demands(frame.frame_duration_s,
                                  frame.data_slot_capacity_bits)
    be_demands = bulk.link_demands(frame.frame_duration_s,
                                   frame.data_slot_capacity_bits)
    all_links = set(g_demands) | set(be_demands)
    conflicts = conflict_graph(topology, hops=2, links=all_links)
    two = schedule_two_classes(
        conflicts, g_demands, be_demands, frame.data_slots,
        delay_constraints=delay_constraints_for(voip, frame))
    print(f"guaranteed region: {two.guaranteed_region} slots; best effort "
          f"got {sum(two.best_effort_grants.values())} of "
          f"{sum(be_demands.values())} requested slots "
          f"({two.grant_fraction(be_demands):.0%})")

    # -- emulated mesh with in-band distribution ---------------------------------
    sim = Simulator()
    trace = Trace(capacity=100_000)
    channel = BroadcastChannel(sim, topology, frame.phy, trace)
    clocks, daemons = {}, {}
    for node in topology.nodes:
        skew = 0.0 if node == 0 else float(
            rngs.stream(f"skew/{node}").uniform(-ppm(10), ppm(10)))
        clocks[node] = DriftingClock(skew=skew)
        daemons[node] = SyncDaemon(node, 0, clocks[node], SyncConfig(),
                                   rngs.stream(f"sync/{node}"), trace)
    sinks = SinkRegistry()
    overlay = TdmaOverlay(
        sim, topology, channel, frame, ControlPlane(topology, 0, frame),
        # nodes boot with an EMPTY schedule; the real one arrives in-band
        Schedule(frame.data_slots),
        clocks, daemons,
        on_packet=lambda n, p: forwarder.packet_arrived(n, p, sim.now),
        trace=trace)
    forwarder = SourceRoutedForwarder(overlay, sinks.on_delivered, trace)
    distributor = ScheduleDistributor(overlay, gateway=0)
    overlay.attach_distributor(distributor)

    overlay.start()
    activation = 20  # frames; enough for the flood to cover a 3x3 grid
    distributor.announce(two, activation_frame=activation)

    sources = {}
    for flow in voip:
        sources[flow.name] = CbrSource.for_codec(
            sim, flow, forwarder.originate, G729, stop_s=DURATION_S)
    for flow in bulk:
        sources[flow.name] = PoissonSource(
            sim, flow, forwarder.originate,
            packet_bits=frame.data_slot_capacity_bits,
            rate_pps=flow.rate_bps / frame.data_slot_capacity_bits,
            rng=rngs.stream(f"bulk/{flow.name}"), stop_s=DURATION_S)

    sim.run(until=DURATION_S + 0.3)

    print(f"schedule flooded to {distributor.coverage():.0%} of nodes, "
          f"activated at frame {activation} "
          f"({activation * frame.frame_duration_s * 1e3:.0f} ms)\n")

    rows = []
    for name, source in sorted(sources.items()):
        qos = sinks.sink(name).qos(sent=source.sent, warmup_s=0.5)
        klass = "guaranteed" if name.startswith("voip") else "best effort"
        rows.append([name, klass, qos.sent, qos.received,
                     f"{qos.p95_delay_s * 1e3:.1f}",
                     f"{qos.loss_fraction:.3f}"])
    print(format_table(
        ["flow", "class", "sent", "rx", "p95 ms", "loss"], rows,
        title="per-flow outcome (packets before activation queue up "
              "and drain afterwards)"))


if __name__ == "__main__":
    main()
